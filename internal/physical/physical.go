// Package physical compiles distributed plan specs (plan.Spec) into
// the paper's "boxes and arrows": push-based physical-operator
// pipelines running on the dataflow engine. The pier node is only a
// harness around this layer — it builds a pipeline per role
// (participant scan, continuous window, join collector, aggregation
// collector, coordinator tail), feeds network arrivals in through
// non-blocking inlets, and wires the exchange operators to the
// overlay through the Env callbacks. Every operator is instrumented
// with rows/bytes/latency counters, which the coordinator merges
// network-wide into EXPLAIN ANALYZE output.
package physical

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/bloom"
	"repro/internal/dataflow"
	"repro/internal/expr"
	"repro/internal/id"
	"repro/internal/plan"
	"repro/internal/spill"
	"repro/internal/tuple"
)

// Env is the pipeline's view of the node it runs on. The physical
// layer never touches the overlay, the DHT, or RPC directly — the
// harness supplies these callbacks, keeping batching and relay
// combining underneath intact.
type Env struct {
	// Scan returns the raw stored payloads of the live local
	// partition of a namespace, split into up to partitions shards of
	// roughly equal size (the parallel-scan work units). Callers may
	// return fewer shards than asked for.
	Scan func(ns string, partitions int) [][][]byte
	// Fetch resolves one fetch-matches probe: a DHT get against the
	// probed table's namespace.
	Fetch func(ctx context.Context, ns string, rid id.ID) ([][]byte, error)
	// ShipRows delivers canonical result rows to the coordinator,
	// returning the payload bytes shipped.
	ShipRows func(window uint64, rows []tuple.Tuple) int
	// ShipPartial routes a batch of partial-state tuples toward their
	// groups' aggregation collectors, returning the payload bytes
	// shipped.
	ShipPartial func(window uint64, partials []tuple.Tuple) int
	// Rehash routes a batch of tuples toward the collectors owning
	// their join-key values at the given join stage, returning the
	// payload bytes shipped. keys holds one canonical join-key
	// encoding per tuple and is valid only during the call.
	Rehash func(stage, side int, window uint64, keys [][]byte, ts []tuple.Tuple) int
	// FlushRoutes drains pending route batches — the barrier run at
	// window boundaries and scan completion.
	FlushRoutes func()
	// DrainAck acknowledges a Drain marker once it has passed through
	// a pipeline's sink: every effect of the data that preceded the
	// marker has been shipped. The EOS completion protocol injects
	// markers into collector inlets and waits on these acks before
	// reporting the node's drain round to the coordinator. Nil when
	// the harness does not track drains.
	DrainAck func(round uint64)
	// Blooms holds the gathered phase-1 filters of the plan's Bloom
	// join stages, keyed by stage (missing stage: pass everything).
	// Stage 0 filters the right scan (built over the left base table);
	// deeper stages filter the left stream before its rehash (built
	// over the right base table — the only scannable side there).
	Blooms map[int]*bloom.Filter
	// JoinMemBudget caps resident build-state bytes per join-collector
	// stage; overflow partitions spill through Spill (0: unbounded).
	JoinMemBudget int64
	// Spill manages this node's join overflow temp files. Nil disables
	// spilling even with a budget set.
	Spill *spill.Manager
	// SpillLabel prefixes spill file names (the query ID).
	SpillLabel string
	// SpillHold is the idle debounce before a quiet-mode re-join pass
	// over spilled partitions (<= 0: operator default).
	SpillHold time.Duration
	// FetchSwitchThreshold returns the observed left-row count at which
	// a fetch-matches stage abandons per-tuple probing and rehash-ships
	// the remaining stream to the stage's collectors (nil or <= 0:
	// never switch).
	FetchSwitchThreshold func(stage int) int64
	// OnFetchSwitch fires when a fetch-matches stage switches
	// strategies mid-flight (metrics hook, may be nil).
	OnFetchSwitch func(stage int)
	// RowBatch bounds rows per result message.
	RowBatch int
	// BatchSize is the vectorization width: tuples per dataflow batch
	// message. <= 0 takes dataflow.DefaultBatchSize; 1 reproduces
	// tuple-at-a-time execution exactly.
	BatchSize int
	// ScanWorkers bounds the parallel partitioned scan. <= 0 takes
	// GOMAXPROCS.
	ScanWorkers int
	// CollectorHold is the aggregation collector's debounce before
	// finalizing a window.
	CollectorHold time.Duration
}

// bloomFor resolves the gathered filter for a stage (nil: none).
func (e *Env) bloomFor(stage int) *bloom.Filter { return e.Blooms[stage] }

// fetchAdapt builds the mid-flight switch config for a fetch stage,
// or nil when switching is disabled.
func (e *Env) fetchAdapt(spec *plan.Spec, stage int) *FetchAdapt {
	if e.FetchSwitchThreshold == nil || e.Rehash == nil {
		return nil
	}
	thr := e.FetchSwitchThreshold(stage)
	if thr <= 0 {
		return nil
	}
	return &FetchAdapt{
		Stage:     stage,
		Threshold: thr,
		LeftCols:  spec.Joins[stage].LeftCols,
		Rehash:    e.Rehash,
		OnSwitch:  e.OnFetchSwitch,
	}
}

// batchSize resolves the configured vectorization width.
func (e *Env) batchSize() int {
	if e.BatchSize > 0 {
		return e.BatchSize
	}
	return dataflow.DefaultBatchSize
}

// scanWorkers resolves the parallel-scan worker bound.
func (e *Env) scanWorkers() int {
	if e.ScanWorkers > 0 {
		return e.ScanWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// Pipeline is one compiled operator graph plus its counters.
type Pipeline struct {
	Graph *dataflow.Graph
	stage string
	// detail enables the per-operator byte counters that cost a
	// tuple re-encode. Compilers set it from spec.Analyze so
	// un-analyzed queries pay nothing; hand-built pipelines default
	// to fully instrumented.
	detail bool
	ops    []*Counters
}

// NewPipeline creates an empty pipeline for the given stage
// ("participant", "join-collector", "agg-collector", "coordinator").
func NewPipeline(stage string) *Pipeline {
	return &Pipeline{Graph: dataflow.New(stage), stage: stage, detail: true}
}

// SetDetail toggles the per-operator byte counters (which cost a
// tuple re-encode on every emit) for operators added afterwards —
// what the compilers derive from spec.Analyze; hand-built pipelines
// that want production-shaped instrumentation turn it off.
func (p *Pipeline) SetDetail(on bool) { p.detail = on }

// Add appends an instrumented operator.
func (p *Pipeline) Add(name string, op OpFunc) *dataflow.Node {
	c := &Counters{Stage: p.stage, Name: name, detail: p.detail}
	p.ops = append(p.ops, c)
	return p.Graph.Add(name, op(c))
}

// Connect wires two operators.
func (p *Pipeline) Connect(from, to *dataflow.Node) { p.Graph.Connect(from, to) }

// Run executes the pipeline to completion (one-shot graphs).
func (p *Pipeline) Run(ctx context.Context) error { return p.Graph.Run(ctx) }

// Start launches the pipeline for streaming graphs (collectors,
// continuous queries); cancel the context or close the inlets to end.
func (p *Pipeline) Start(ctx context.Context) (*dataflow.Running, error) { return p.Graph.Start(ctx) }

// Stats snapshots every operator's counters in build order. Safe
// while the pipeline is still running.
func (p *Pipeline) Stats() []plan.OpStats {
	out := make([]plan.OpStats, 0, len(p.ops))
	for _, c := range p.ops {
		out = append(out, c.Stats())
	}
	return out
}

// ---------------------------------------------------------------------------
// Plan compilation

// CompileOneShot builds the participant-side pipeline of a one-shot
// plan: what this node contributes from its local partitions.
//
//	1 scan:      Scan → Filter → Project → (PartialAgg → ShipPartial | ShipRows)
//	join chain:  Scan(0) → Filter → FetchMatches(stage 0..p-1 while fetch)
//	             → (tail when no stages remain | RehashExchange(stage p, side 0))
//	             plus, per rehashing stage s: Scan(s+1) → Filter →
//	             [BloomProbe for a stage-0 Bloom join] → RehashExchange(s, side 1)
//
// Consecutive leading fetch-matches stages run inline against the
// local scan of the leftmost table; the first symmetric/Bloom stage
// rehashes the accumulated left rows to that stage's collectors.
// Right tables of fetch stages deeper in the chain are probed in
// place by the upstream collectors, so participants never scan them.
func CompileOneShot(spec *plan.Spec, env *Env) *Pipeline {
	p := NewPipeline("participant")
	p.detail = spec.Analyze
	if len(spec.Scans) == 1 {
		sc := &spec.Scans[0]
		prev := p.Add("scan", ScanSource(env.Scan, sc.Namespace, sc.Schema.Arity(), env.batchSize(), env.scanWorkers()))
		prev = p.maybeFilter(prev, "filter", sc.Where)
		prev = p.maybeFilter(prev, "post-filter", spec.PostFilter)
		p.addTail(spec, env, prev, false)
		return p
	}
	// Left chain: scan the leftmost table, fold in the leading run of
	// fetch-matches stages.
	sc0 := &spec.Scans[0]
	prev := p.Add("scan.0", ScanSource(env.Scan, sc0.Namespace, sc0.Schema.Arity(), env.batchSize(), env.scanWorkers()))
	prev = p.maybeFilter(prev, "filter.0", sc0.Where)
	prev, stage := p.addFetchChain(spec, env, prev, 0)
	if stage == len(spec.Joins) {
		prev = p.maybeFilter(prev, "post-filter", spec.PostFilter)
		p.addTail(spec, env, prev, false)
	} else {
		// A Bloom join past stage 0 filters the accumulated left stream
		// before its rehash — the filter was built over the stage's
		// right base table.
		if stage > 0 && spec.Joins[stage].Strategy == plan.BloomJoin {
			bp := p.Add(fmt.Sprintf("bloom-probe.%d", stage), BloomProbe(env.bloomFor(stage), spec.Joins[stage].LeftCols))
			p.Connect(prev, bp)
			prev = bp
		}
		rh := p.Add(fmt.Sprintf("rehash.%d.l", stage),
			RehashExchange(stage, 0, spec.Joins[stage].LeftCols, env.Rehash, env.FlushRoutes, env.DrainAck))
		p.Connect(prev, rh)
	}
	// Right-side scans for every rehashing stage.
	for s := stage; s < len(spec.Joins); s++ {
		j := &spec.Joins[s]
		if j.Strategy == plan.FetchMatches {
			continue // probed in place by the upstream collector
		}
		sc := &spec.Scans[s+1]
		rprev := p.Add(fmt.Sprintf("scan.%d", s+1), ScanSource(env.Scan, sc.Namespace, sc.Schema.Arity(), env.batchSize(), env.scanWorkers()))
		rprev = p.maybeFilter(rprev, fmt.Sprintf("filter.%d", s+1), sc.Where)
		if s == 0 && j.Strategy == plan.BloomJoin {
			bp := p.Add("bloom-probe", BloomProbe(env.bloomFor(0), j.RightCols))
			p.Connect(rprev, bp)
			rprev = bp
		}
		rh := p.Add(fmt.Sprintf("rehash.%d.r", s),
			RehashExchange(s, 1, j.RightCols, env.Rehash, env.FlushRoutes, env.DrainAck))
		p.Connect(rprev, rh)
	}
	return p
}

// addFetchChain appends the run of consecutive fetch-matches stages
// beginning at stage, probing each right table in place via the DHT.
// Returns the new upstream node and the first non-fetch stage index
// (== len(spec.Joins) when the chain consumed every stage).
func (p *Pipeline) addFetchChain(spec *plan.Spec, env *Env, prev *dataflow.Node, stage int) (*dataflow.Node, int) {
	for stage < len(spec.Joins) && spec.Joins[stage].Strategy == plan.FetchMatches {
		j := &spec.Joins[stage]
		right := &spec.Scans[stage+1]
		ns := right.Namespace
		fetch := func(ctx context.Context, rid id.ID) ([][]byte, error) {
			return env.Fetch(ctx, ns, rid)
		}
		fm := p.Add(fmt.Sprintf("fetch-matches.%d", stage), FetchMatchesAdaptive(
			probeOrder(j, right), right.Schema.Arity(), right.Where,
			j.LeftCols, j.RightCols, fetch, env.fetchAdapt(spec, stage)))
		p.Connect(prev, fm)
		prev = fm
		stage++
	}
	return prev, stage
}

// CompileContinuous builds the windowed participant pipeline. The
// returned inlet admits samples (data messages stamped with arrival
// time); the WindowTicker source punctuates at absolute window
// boundaries and the punctuation drives window emission, partial
// flushing, and the per-window route barrier.
func CompileContinuous(spec *plan.Spec, env *Env) (*Pipeline, *Inlet) {
	p := NewPipeline("participant")
	p.detail = spec.Analyze
	in := NewInlet()
	sc := &spec.Scans[0]
	slide := time.Duration(spec.Slide)
	if slide <= 0 {
		slide = time.Duration(spec.Window)
	}
	prev := p.Add("window-src", WindowTicker(in, slide, time.Duration(spec.Live)))
	prev = p.maybeFilter(prev, "filter", sc.Where)
	wb := p.Add("window", WindowBuffer(time.Duration(spec.Window), env.batchSize()))
	p.Connect(prev, wb)
	p.addTail(spec, env, wb, false)
	return p, in
}

// CompileJoinCollector builds the collector pipeline run by the node
// owning a join-key value of one join stage: rehashed tuples of both
// sides arrive through the returned inlets, joined rows fold in any
// following run of fetch-matches stages in place, and then either
// rehash onward to the next symmetric stage's collectors or flow
// through the rest of the plan toward the coordinator (for
// aggregates, as one eager partial per row toward the aggregation
// collectors, with relay combining absorbing the fan-in underneath).
func CompileJoinCollector(spec *plan.Spec, stage int, env *Env) (*Pipeline, [2]*Inlet) {
	p := NewPipeline(fmt.Sprintf("join-collector.%d", stage))
	p.detail = spec.Analyze
	j := &spec.Joins[stage]
	inlets := [2]*Inlet{NewInlet(), NewInlet()}
	l := p.Add("probe-src.l", inlets[0].Source)
	r := p.Add("probe-src.r", inlets[1].Source)
	jp := p.Add("hybrid-join", HybridJoin(
		[2]int{spec.LeftArity(stage), spec.Scans[stage+1].Schema.Arity()},
		[2][]int{j.LeftCols, j.RightCols},
		HybridJoinConfig{
			Budget:    env.JoinMemBudget,
			Spill:     env.Spill,
			Label:     fmt.Sprintf("%s-s%d", env.SpillLabel, stage),
			IdleHold:  env.SpillHold,
			BatchSize: env.batchSize(),
		}))
	p.Connect(l, jp)
	p.Connect(r, jp)
	p.addJoinContinuation(spec, env, jp, stage+1)
	return p, inlets
}

// CompileFetchCollector builds the collector pipeline of a
// fetch-matches stage whose participants switched strategy mid-flight:
// the rehash-shipped remainder of the left stream arrives through the
// inlets (side 1 is never sent, but both exist so the EOS drain
// protocol stays uniform across stage kinds), gets deduplicated, and
// probes the published right table with a shared per-key cache. The
// continuation — further fetch stages, the next rehash, or the plan
// tail — is identical to CompileJoinCollector's.
func CompileFetchCollector(spec *plan.Spec, stage int, env *Env) (*Pipeline, [2]*Inlet) {
	p := NewPipeline(fmt.Sprintf("join-collector.%d", stage))
	p.detail = spec.Analyze
	j := &spec.Joins[stage]
	right := &spec.Scans[stage+1]
	ns := right.Namespace
	fetch := func(ctx context.Context, rid id.ID) ([][]byte, error) {
		return env.Fetch(ctx, ns, rid)
	}
	inlets := [2]*Inlet{NewInlet(), NewInlet()}
	l := p.Add("probe-src.l", inlets[0].Source)
	r := p.Add("probe-src.r", inlets[1].Source)
	fc := p.Add("fetch-collector", FetchCollector(
		probeOrder(j, right), right.Schema.Arity(), right.Where,
		spec.LeftArity(stage), j.LeftCols, j.RightCols, fetch))
	p.Connect(l, fc)
	p.Connect(r, fc)
	p.addJoinContinuation(spec, env, fc, stage+1)
	return p, inlets
}

// addJoinContinuation appends everything after a join collector's
// stage operator: the following run of fetch-matches stages, then
// either the rehash toward the next symmetric stage (Bloom-filtered
// when that stage gathered one) or the plan tail.
func (p *Pipeline) addJoinContinuation(spec *plan.Spec, env *Env, jp *dataflow.Node, from int) {
	prev, next := p.addFetchChain(spec, env, jp, from)
	if next == len(spec.Joins) {
		prev = p.maybeFilter(prev, "post-filter", spec.PostFilter)
		p.addTail(spec, env, prev, true)
		return
	}
	if next > 0 && spec.Joins[next].Strategy == plan.BloomJoin {
		bp := p.Add(fmt.Sprintf("bloom-probe.%d", next), BloomProbe(env.bloomFor(next), spec.Joins[next].LeftCols))
		p.Connect(prev, bp)
		prev = bp
	}
	rh := p.Add(fmt.Sprintf("rehash.%d.l", next),
		RehashExchange(next, 0, spec.Joins[next].LeftCols, env.Rehash, env.FlushRoutes, env.DrainAck))
	p.Connect(prev, rh)
}

// CompileAggCollector builds the aggregation-collector pipeline:
// partial-state tuples arrive through the returned inlet, merge per
// (window, group), and finalized rows ship to the coordinator after
// the debounced hold.
func CompileAggCollector(spec *plan.Spec, env *Env) (*Pipeline, *Inlet) {
	p := NewPipeline("agg-collector")
	p.detail = spec.Analyze
	in := NewInlet()
	src := p.Add("merge-src", in.Source)
	fa := p.Add("final-agg", FinalAgg(spec.GroupCols, spec.Aggs, env.CollectorHold, env.batchSize()))
	p.Connect(src, fa)
	ship := p.Add("ship-rows", ShipRows(env.ShipRows, env.RowBatch, false, nil, env.DrainAck))
	p.Connect(fa, ship)
	return p, in
}

// CompileFinalize builds the coordinator-local tail over collected
// canonical rows: HAVING, DISTINCT, ORDER BY, LIMIT, and the output
// permutation — the same operator library, instrumented. batchSize
// is the tail's vectorization width (<= 0 takes the default; 1 is
// tuple-at-a-time, matching the rest of the node's pipelines).
func CompileFinalize(spec *plan.Spec, rows []tuple.Tuple, out *[]tuple.Tuple, batchSize int) *Pipeline {
	p := NewPipeline("coordinator")
	p.detail = spec.Analyze
	bs := batchSize
	if bs <= 0 {
		bs = dataflow.DefaultBatchSize
	}
	prev := p.Add("rows", SliceSource(rows, bs))
	if spec.Having != nil {
		h := p.Add("having", Filter(spec.Having))
		p.Connect(prev, h)
		prev = h
	}
	if spec.Distinct {
		d := p.Add("distinct", Distinct())
		p.Connect(prev, d)
		prev = d
	}
	if len(spec.OrderCols) > 0 {
		k := 0 // full sort
		if spec.Limit >= 0 {
			k = spec.Limit
		}
		top := p.Add("order", TopK(k, spec.OrderCols, spec.OrderDesc, bs))
		p.Connect(prev, top)
		prev = top
	} else if spec.Limit >= 0 {
		lim := p.Add("limit", Limit(spec.Limit))
		p.Connect(prev, lim)
		prev = lim
	}
	perm := p.Add("output-perm", Project(spec.OutPermExprs()))
	p.Connect(prev, perm)
	sink := p.Add("collect", Collect(out))
	p.Connect(perm, sink)
	return p
}

// CompileBloomScan builds the Bloom-join phase-1 pipeline: scan the
// leftmost table's local partition and feed every join-key encoding
// (the first stage's left columns) to add, which inserts into the
// per-site filter. Operator names are prefixed so the counters never
// merge with the main scan pipeline's.
func CompileBloomScan(sc *plan.ScanSpec, keyCols []int, env *Env, analyze bool, add func(key []byte)) *Pipeline {
	p := NewPipeline("participant")
	p.detail = analyze
	prev := p.Add("bloom-scan", ScanSource(env.Scan, sc.Namespace, sc.Schema.Arity(), env.batchSize(), env.scanWorkers()))
	prev = p.maybeFilter(prev, "bloom-scan-filter", sc.Where)
	sink := p.Add("bloom-build", FuncSink(func(t tuple.Tuple) {
		add(t.Project(keyCols).Bytes())
	}))
	p.Connect(prev, sink)
	return p
}

// maybeFilter inserts a filter operator when the predicate exists.
func (p *Pipeline) maybeFilter(prev *dataflow.Node, name string, pred expr.Expr) *dataflow.Node {
	if pred == nil {
		return prev
	}
	f := p.Add(name, Filter(pred))
	p.Connect(prev, f)
	return f
}

// addTail appends the shared plan tail after the row-producing
// operators: projection, then partial aggregation shipped toward
// collectors, or result rows shipped to the coordinator. streaming
// marks collector pipelines, whose input never ends — partials go out
// eagerly per row and result rows ship immediately, keeping the
// coordinator's quiescence clock honest.
func (p *Pipeline) addTail(spec *plan.Spec, env *Env, prev *dataflow.Node, streaming bool) {
	proj := p.Add("project", Project(spec.Proj))
	p.Connect(prev, proj)
	prev = proj
	if spec.IsAggregate() {
		agg := p.Add("partial-agg", PartialAgg(spec.GroupCols, spec.Aggs, streaming, !spec.IsContinuous(), env.batchSize()))
		p.Connect(prev, agg)
		ship := p.Add("ship-partial", ShipPartial(env.ShipPartial, env.FlushRoutes, env.DrainAck))
		p.Connect(agg, ship)
		return
	}
	ship := p.Add("ship-rows", ShipRows(env.ShipRows, env.RowBatch, streaming, env.FlushRoutes, env.DrainAck))
	p.Connect(prev, ship)
}

// probeOrder arranges a fetch stage's left join columns in the right
// table's key-column order so the probe's resource ID hashes
// identically to the publisher's.
func probeOrder(j *plan.JoinSpec, right *plan.ScanSpec) []int {
	order := make([]int, len(right.Schema.Key))
	for i, kc := range right.Schema.Key {
		for jj, jc := range j.RightCols {
			if jc == kc {
				order[i] = j.LeftCols[jj]
				break
			}
		}
	}
	return order
}

// Instrumentation note: counters are folded inline into every
// operator loop. The engine deliberately has no per-edge "tap"
// wrapper goroutines — counting through extra channel hops costs two
// goroutines and two channel transfers per edge, which dominated
// local execution before the batch-at-a-time rewrite (CI greps
// against their reintroduction).

package physical

import (
	"context"
	"testing"
	"time"

	"repro/internal/dataflow"
	"repro/internal/tuple"
)

func TestFanOutBroadcastsWindows(t *testing.T) {
	in := NewInlet()
	fo := NewFanOut()
	p := NewPipeline("coordinator")
	src := p.Add("fanout-src", in.Source)
	op := p.Add("fan-out", fo.Op())
	p.Connect(src, op)

	id1, ch1 := fo.Subscribe(4)
	_, ch2 := fo.Subscribe(4)

	run, err := p.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows := []tuple.Tuple{{tuple.Int(1)}, {tuple.Int(2)}}
	in.Push(dataflow.BatchMsg(rows, 7))

	for _, ch := range []<-chan FanOutWindow{ch1, ch2} {
		select {
		case w := <-ch:
			if w.Seq != 7 || len(w.Rows) != 2 {
				t.Fatalf("got window %+v", w)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("subscriber did not receive the window")
		}
	}

	// Unsubscribed consumers see a closed channel and stop counting.
	if rest := fo.Unsubscribe(id1); rest != 1 {
		t.Fatalf("Unsubscribe left %d subscribers, want 1", rest)
	}
	if _, ok := <-ch1; ok {
		t.Fatal("unsubscribed channel not closed")
	}

	in.Push(dataflow.Msg{Kind: dataflow.Data, T: tuple.Tuple{tuple.Int(3)}, Seq: 8})
	select {
	case w := <-ch2:
		if w.Seq != 8 || len(w.Rows) != 1 {
			t.Fatalf("got window %+v", w)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("remaining subscriber did not receive the window")
	}

	// End of stream closes every remaining subscription.
	in.Close()
	if err := run.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-ch2; ok {
		t.Fatal("subscriber channel not closed at end of stream")
	}
	if _, ch3 := fo.Subscribe(1); func() bool { _, ok := <-ch3; return ok }() {
		t.Fatal("late Subscribe returned an open channel")
	}
}

func TestFanOutDropsForSlowSubscriber(t *testing.T) {
	fo := NewFanOut()
	_, slow := fo.Subscribe(1)
	if n := fo.deliver(FanOutWindow{Seq: 1}); n != 1 {
		t.Fatalf("deliver -> %d, want 1", n)
	}
	// Buffer full: the second window drops rather than blocking.
	if n := fo.deliver(FanOutWindow{Seq: 2}); n != 0 {
		t.Fatalf("deliver -> %d, want 0 (drop-on-full)", n)
	}
	if w := <-slow; w.Seq != 1 {
		t.Fatalf("got seq %d, want 1", w.Seq)
	}
	fo.Close()
	fo.Close() // idempotent
	if _, ok := <-slow; ok {
		t.Fatal("channel not closed by Close")
	}
}

package physical

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bloom"
	"repro/internal/dataflow"
	"repro/internal/expr"
	"repro/internal/id"
	"repro/internal/ops"
	"repro/internal/tuple"
)

// runOp executes a single operator over a scripted input stream and
// returns everything it emitted.
func runOp(t *testing.T, op OpFunc, in []dataflow.Msg) []dataflow.Msg {
	t.Helper()
	return runOpN(t, op, [][]dataflow.Msg{in})
}

// runOpN is runOp with one scripted stream per input port.
func runOpN(t *testing.T, op OpFunc, ins [][]dataflow.Msg) []dataflow.Msg {
	t.Helper()
	p := NewPipeline("test")
	srcs := make([]*dataflow.Node, len(ins))
	for i, stream := range ins {
		stream := stream
		srcs[i] = p.Add(fmt.Sprintf("src%d", i), func(c *Counters) dataflow.RunFunc {
			return func(ctx context.Context, _ []<-chan dataflow.Msg, outs []chan<- dataflow.Msg) error {
				for _, m := range stream {
					if !dataflow.EmitAll(ctx, outs, m) {
						return nil
					}
				}
				return nil
			}
		})
	}
	node := p.Add("op", op)
	for _, s := range srcs {
		p.Connect(s, node)
	}
	var mu sync.Mutex
	var got []dataflow.Msg
	sink := p.Add("sink", func(c *Counters) dataflow.RunFunc {
		return func(ctx context.Context, sinkIns []<-chan dataflow.Msg, _ []chan<- dataflow.Msg) error {
			for m := range dataflow.Merge(ctx, sinkIns) {
				mu.Lock()
				got = append(got, m)
				mu.Unlock()
			}
			return nil
		}
	})
	p.Connect(node, sink)
	if err := p.Run(context.Background()); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	return got
}

func dataMsgs(ms []dataflow.Msg) []tuple.Tuple {
	var out []tuple.Tuple
	for _, m := range ms {
		if m.Kind != dataflow.Data {
			continue
		}
		if m.Batch != nil {
			out = append(out, m.Batch...)
		} else {
			out = append(out, m.T)
		}
	}
	return out
}

// dataSeqs returns one window stamp per data tuple, batch-expanded.
func dataSeqs(ms []dataflow.Msg) []uint64 {
	var out []uint64
	for _, m := range ms {
		if m.Kind != dataflow.Data {
			continue
		}
		for i := 0; i < m.NRows(); i++ {
			out = append(out, m.Seq)
		}
	}
	return out
}

func punctCount(ms []dataflow.Msg) int {
	n := 0
	for _, m := range ms {
		if m.Kind == dataflow.Punct {
			n++
		}
	}
	return n
}

func row(vals ...interface{}) tuple.Tuple {
	t := make(tuple.Tuple, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case int:
			t[i] = tuple.Int(int64(x))
		case string:
			t[i] = tuple.String(x)
		case float64:
			t[i] = tuple.Float(x)
		}
	}
	return t
}

func TestScanSourceSkipsMalformed(t *testing.T) {
	good := row("a", 1).Bytes()
	wrongArity := row("b").Bytes()
	scan := func(ns string, partitions int) [][][]byte {
		if ns != "t" {
			t.Fatalf("scanned %q", ns)
		}
		return [][][]byte{{good, {0xff, 0x01}, wrongArity, good}}
	}
	for _, batchSize := range []int{1, 3, 64} {
		got := runOp(t, ScanSource(scan, "t", 2, batchSize, 1), nil)
		rows := dataMsgs(got)
		if len(rows) != 2 {
			t.Fatalf("batch %d: got %d rows, want 2", batchSize, len(rows))
		}
		for _, r := range rows {
			if !r.Equal(row("a", 1)) {
				t.Fatalf("unexpected row %v", r)
			}
		}
	}
}

func TestScanSourceParallelPartitions(t *testing.T) {
	const total = 1000
	payloads := make([][]byte, total)
	for i := range payloads {
		payloads[i] = row("n", i).Bytes()
	}
	scan := func(ns string, partitions int) [][][]byte {
		if partitions < 2 {
			t.Fatalf("compiler asked for %d partitions", partitions)
		}
		// Deal into 4 shards like dht.LScanParts would.
		out := make([][][]byte, 4)
		for i, p := range payloads {
			out[i%4] = append(out[i%4], p)
		}
		return out
	}
	got := runOp(t, ScanSource(scan, "t", 2, 16, 4), nil)
	rows := dataMsgs(got)
	if len(rows) != total {
		t.Fatalf("parallel scan emitted %d rows, want %d", len(rows), total)
	}
	seen := make(map[int64]bool)
	for _, r := range rows {
		seen[r[1].I] = true
	}
	if len(seen) != total {
		t.Fatalf("parallel scan lost rows: %d distinct of %d", len(seen), total)
	}
}

func TestFilterDropsAndForwardsPuncts(t *testing.T) {
	pred := &expr.Cmp{Op: expr.GT, L: &expr.Col{Index: 1}, R: &expr.Lit{V: tuple.Int(5)}}
	in := []dataflow.Msg{
		dataflow.DataMsg(row("a", 3)),
		dataflow.DataMsg(row("b", 7)),
		dataflow.PunctMsg(1, time.Now()),
		dataflow.DataMsg(row("c", 9)),
	}
	got := runOp(t, Filter(pred), in)
	rows := dataMsgs(got)
	if len(rows) != 2 || !rows[0].Equal(row("b", 7)) || !rows[1].Equal(row("c", 9)) {
		t.Fatalf("got %v", rows)
	}
	if punctCount(got) != 1 {
		t.Fatalf("punct not forwarded")
	}
}

func TestFilterDropsEvalErrors(t *testing.T) {
	// Column index out of range → eval error → row dropped, not fatal.
	pred := &expr.Cmp{Op: expr.GT, L: &expr.Col{Index: 9}, R: &expr.Lit{V: tuple.Int(5)}}
	got := runOp(t, Filter(pred), []dataflow.Msg{dataflow.DataMsg(row("a", 3))})
	if len(dataMsgs(got)) != 0 {
		t.Fatalf("error row not dropped")
	}
}

func TestProjectComputesColumns(t *testing.T) {
	exprs := []expr.Expr{
		&expr.Col{Index: 1},
		&expr.Arith{Op: expr.Add, L: &expr.Col{Index: 1}, R: &expr.Lit{V: tuple.Int(10)}},
	}
	got := runOp(t, Project(exprs), []dataflow.Msg{dataflow.DataMsg(row("a", 5))})
	rows := dataMsgs(got)
	if len(rows) != 1 || !rows[0].Equal(row(5, 15)) {
		t.Fatalf("got %v", rows)
	}
}

func TestBloomProbeSuppresses(t *testing.T) {
	f := bloom.NewWithBits(1024, 3)
	f.Add(row(1).Bytes())
	in := []dataflow.Msg{
		dataflow.DataMsg(row(1, "keep")),
		dataflow.DataMsg(row(2, "drop")),
	}
	got := runOp(t, BloomProbe(f, []int{0}), in)
	rows := dataMsgs(got)
	if len(rows) != 1 || rows[0][1].S != "keep" {
		t.Fatalf("got %v", rows)
	}
	// Nil filter passes everything.
	got = runOp(t, BloomProbe(nil, []int{0}), in)
	if len(dataMsgs(got)) != 2 {
		t.Fatal("nil filter should pass all")
	}
}

func TestRehashExchangeRoutes(t *testing.T) {
	var mu sync.Mutex
	type shipped struct {
		side   int
		window uint64
		key    string
	}
	var ships []shipped
	ship := func(stage, side int, window uint64, keys [][]byte, ts []tuple.Tuple) int {
		mu.Lock()
		for _, key := range keys {
			ships = append(ships, shipped{side, window, string(key)})
		}
		mu.Unlock()
		if stage != 2 {
			t.Errorf("stage %d, want 2", stage)
		}
		if len(keys) != len(ts) {
			t.Errorf("%d keys for %d tuples", len(keys), len(ts))
		}
		return len(keys)
	}
	in := []dataflow.Msg{
		{Kind: dataflow.Data, T: row("a", 1), Seq: 4},
		dataflow.BatchMsg([]tuple.Tuple{row("b", 2), row("c", 3)}, 4),
	}
	runOp(t, RehashExchange(2, 1, []int{1}, ship, nil, nil), in)
	if len(ships) != 3 {
		t.Fatalf("%d ships", len(ships))
	}
	// Key encodings must be canonical — identical to Project+Bytes —
	// for both the singleton and the batched form.
	if ships[0].side != 1 || ships[0].window != 4 || ships[0].key != string(row(1).Bytes()) {
		t.Fatalf("bad ship %+v", ships[0])
	}
	if ships[2].key != string(row(3).Bytes()) {
		t.Fatalf("bad batched ship key %x", ships[2].key)
	}
}

func TestFetchMatchesProbes(t *testing.T) {
	// Right table: k → (k, info), published keyed on column 0.
	rightRows := map[string][][]byte{}
	for k := 1; k <= 3; k++ {
		rid := row(k).HashKey([]int{0})
		rightRows[string(rid[:])] = [][]byte{row(k, fmt.Sprintf("info-%d", k)).Bytes()}
	}
	fetch := func(ctx context.Context, rid id.ID) ([][]byte, error) {
		return rightRows[string(rid[:])], nil
	}
	// Left (node, k) joins right (k, info) on left[1] = right[0].
	in := []dataflow.Msg{
		dataflow.DataMsg(row("a", 2)),
		dataflow.DataMsg(row("b", 9)), // no match
	}
	got := runOp(t, FetchMatches([]int{1}, 2, nil, []int{1}, []int{0}, fetch), in)
	rows := dataMsgs(got)
	if len(rows) != 1 || !rows[0].Equal(row("a", 2, 2, "info-2")) {
		t.Fatalf("got %v", rows)
	}
}

func TestJoinProbeMatchesDedupsAndIsolatesWindows(t *testing.T) {
	lt := row("a", 1)
	rt := row(1, "x")
	left := []dataflow.Msg{
		{Kind: dataflow.Data, T: lt, Seq: 0},
		{Kind: dataflow.Data, T: lt, Seq: 0}, // retransmit: deduped
		{Kind: dataflow.Data, T: lt, Seq: 7}, // other window: no match there
	}
	right := []dataflow.Msg{
		{Kind: dataflow.Data, T: rt, Seq: 0},
	}
	got := runOpN(t, JoinProbe([2]int{2, 2}, [2][]int{{1}, {0}}), [][]dataflow.Msg{left, right})
	rows := dataMsgs(got)
	if len(rows) != 1 {
		t.Fatalf("got %d joined rows, want 1 (dedup + window isolation): %v", len(rows), rows)
	}
	if !rows[0].Equal(row("a", 1, 1, "x")) {
		t.Fatalf("got %v", rows[0])
	}
	if got[0].Seq != 0 {
		t.Fatalf("joined row window %d", got[0].Seq)
	}
}

func TestPartialAggBatchFlushesOnPunctAndEOS(t *testing.T) {
	aggs := []ops.AggSpec{{Func: ops.Sum, ArgCol: 1}}
	in := []dataflow.Msg{
		{Kind: dataflow.Data, T: row("a", 1), Seq: 3},
		{Kind: dataflow.Data, T: row("a", 2), Seq: 3},
		dataflow.PunctMsg(3, time.Now()),
		{Kind: dataflow.Data, T: row("b", 5), Seq: 4},
	}
	got := runOp(t, PartialAgg([]int{0}, aggs, false, true, 1), in)
	rows := dataMsgs(got)
	if len(rows) != 2 {
		t.Fatalf("got %v", rows)
	}
	// Window 3 flushed by the punctuation, stamped with its seq.
	if !rows[0].Equal(row("a", 3)) || got[0].Seq != 3 {
		t.Fatalf("punct flush got %v seq %d", rows[0], got[0].Seq)
	}
	// Residual group flushed at end of stream.
	if !rows[1].Equal(row("b", 5)) {
		t.Fatalf("EOS flush got %v", rows[1])
	}
	if punctCount(got) != 1 {
		t.Fatal("punct not forwarded")
	}
	// Continuous mode: no EOS flush — unclosed windows never ship.
	got = runOp(t, PartialAgg([]int{0}, aggs, false, false, 1), in)
	if len(dataMsgs(got)) != 1 {
		t.Fatalf("continuous mode flushed the open window: %v", dataMsgs(got))
	}
}

func TestPartialAggEagerEmitsPerRow(t *testing.T) {
	aggs := []ops.AggSpec{{Func: ops.Count, ArgCol: -1}}
	in := []dataflow.Msg{
		{Kind: dataflow.Data, T: row("a", 1), Seq: 2},
		{Kind: dataflow.Data, T: row("a", 9), Seq: 2},
	}
	got := runOp(t, PartialAgg([]int{0}, aggs, true, false, 1), in)
	rows := dataMsgs(got)
	if len(rows) != 2 {
		t.Fatalf("eager mode emitted %d partials, want one per row", len(rows))
	}
	for _, r := range rows {
		if !r.Equal(row("a", 1)) {
			t.Fatalf("partial %v", r)
		}
	}
}

func TestFinalAggDebouncedFlushAndRefinement(t *testing.T) {
	aggs := []ops.AggSpec{{Func: ops.Sum, ArgCol: 1}}
	in := NewInlet()
	p := NewPipeline("test")
	src := p.Add("src", in.Source)
	fa := p.Add("final-agg", FinalAgg([]int{0}, aggs, 30*time.Millisecond, 1))
	p.Connect(src, fa)
	var mu sync.Mutex
	var flushes [][]tuple.Tuple
	var cur []tuple.Tuple
	sink := p.Add("sink", func(c *Counters) dataflow.RunFunc {
		return func(ctx context.Context, ins []<-chan dataflow.Msg, _ []chan<- dataflow.Msg) error {
			for m := range dataflow.Merge(ctx, ins) {
				mu.Lock()
				if m.Kind == dataflow.Data {
					cur = append(cur, m.T)
				} else {
					flushes = append(flushes, cur)
					cur = nil
				}
				mu.Unlock()
			}
			return nil
		}
	})
	p.Connect(fa, sink)
	run, err := p.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Two partials for one group (window 5) merge before the hold.
	in.Push(dataflow.Msg{Kind: dataflow.Data, T: row("g", 2), Seq: 5})
	in.Push(dataflow.Msg{Kind: dataflow.Data, T: row("g", 3), Seq: 5})
	time.Sleep(120 * time.Millisecond)
	mu.Lock()
	if len(flushes) != 1 || len(flushes[0]) != 1 || !flushes[0][0].Equal(row("g", 5)) {
		mu.Unlock()
		t.Fatalf("first flush: %v", flushes)
	}
	mu.Unlock()
	// A straggler triggers a refined re-flush of the whole window.
	in.Push(dataflow.Msg{Kind: dataflow.Data, T: row("g", 10), Seq: 5})
	time.Sleep(120 * time.Millisecond)
	mu.Lock()
	if len(flushes) != 2 || len(flushes[1]) != 1 || !flushes[1][0].Equal(row("g", 15)) {
		mu.Unlock()
		t.Fatalf("refined flush: %v", flushes)
	}
	mu.Unlock()
	in.Close()
	if err := run.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestWindowBufferEmitsWindowAndPrunes(t *testing.T) {
	base := time.Now()
	in := []dataflow.Msg{
		{Kind: dataflow.Data, T: row("old", 1), Time: base.Add(-2 * time.Second)},
		{Kind: dataflow.Data, T: row("new", 2), Time: base.Add(-200 * time.Millisecond)},
		{Kind: dataflow.Punct, Seq: 9, Time: base}, // window (base-1s, base]
		{Kind: dataflow.Punct, Seq: 10, Time: base.Add(500 * time.Millisecond)},
	}
	got := runOp(t, WindowBuffer(time.Second, 1), in)
	rows := dataMsgs(got)
	// "new" appears in both overlapping windows; "old" in neither.
	if len(rows) != 2 || !rows[0].Equal(row("new", 2)) || !rows[1].Equal(row("new", 2)) {
		t.Fatalf("got %v", rows)
	}
	var seqs []uint64
	for _, m := range got {
		if m.Kind == dataflow.Data {
			seqs = append(seqs, m.Seq)
		}
	}
	if seqs[0] != 9 || seqs[1] != 10 {
		t.Fatalf("window stamps %v", seqs)
	}
	if punctCount(got) != 2 {
		t.Fatal("punctuations not forwarded")
	}
}

func TestWindowBufferNoDoubleCountAcrossTumblingWindows(t *testing.T) {
	// A sample that arrives just AFTER a window boundary but drains
	// before the punctuation must count only toward the next window.
	base := time.Now()
	in := []dataflow.Msg{
		{Kind: dataflow.Data, T: row("late", 1), Time: base.Add(time.Millisecond)},
		{Kind: dataflow.Punct, Seq: 1, Time: base}, // window (base-1s, base]
		{Kind: dataflow.Punct, Seq: 2, Time: base.Add(time.Second)},
	}
	got := runOp(t, WindowBuffer(time.Second, 1), in)
	rows := dataMsgs(got)
	if len(rows) != 1 {
		t.Fatalf("sample counted in %d windows, want 1: %v", len(rows), got)
	}
	for _, m := range got {
		if m.Kind == dataflow.Data && m.Seq != 2 {
			t.Fatalf("late sample landed in window %d, want 2", m.Seq)
		}
	}
}

func TestWindowTickerPunctuatesAlignedBoundaries(t *testing.T) {
	in := NewInlet()
	in.Push(dataflow.Msg{Kind: dataflow.Data, T: row("s", 1), Time: time.Now()})
	slide := 50 * time.Millisecond
	got := runOp(t, WindowTicker(in, slide, 180*time.Millisecond), nil)
	if len(dataMsgs(got)) != 1 {
		t.Fatalf("sample not forwarded: %v", got)
	}
	var puncts []dataflow.Msg
	for _, m := range got {
		if m.Kind == dataflow.Punct {
			puncts = append(puncts, m)
		}
	}
	if len(puncts) < 2 {
		t.Fatalf("only %d puncts in live horizon", len(puncts))
	}
	for i, p := range puncts {
		// Absolute alignment: seq equals the boundary's slide index.
		if p.Time.UnixNano()%int64(slide) != 0 {
			t.Fatalf("boundary %v not slide-aligned", p.Time)
		}
		if p.Seq != uint64(p.Time.UnixNano()/int64(slide)) {
			t.Fatalf("seq %d does not match boundary %v", p.Seq, p.Time)
		}
		if i > 0 && p.Seq != puncts[i-1].Seq+1 {
			t.Fatalf("non-consecutive seqs %d → %d", puncts[i-1].Seq, p.Seq)
		}
	}
}

func TestShipRowsBatchedAndEager(t *testing.T) {
	var mu sync.Mutex
	type call struct {
		window uint64
		n      int
	}
	var calls []call
	ship := func(window uint64, rows []tuple.Tuple) int {
		mu.Lock()
		calls = append(calls, call{window, len(rows)})
		mu.Unlock()
		return len(rows)
	}
	in := []dataflow.Msg{
		{Kind: dataflow.Data, T: row(1), Seq: 1},
		{Kind: dataflow.Data, T: row(2), Seq: 1},
		{Kind: dataflow.Data, T: row(3), Seq: 1},
		{Kind: dataflow.Data, T: row(4), Seq: 2}, // seq change flushes
		dataflow.PunctMsg(2, time.Now()),         // punct flushes
	}
	runOp(t, ShipRows(ship, 2, false, nil, nil), in)
	want := []call{{1, 2}, {1, 1}, {2, 1}}
	if len(calls) != len(want) {
		t.Fatalf("calls %v", calls)
	}
	for i, w := range want {
		if calls[i] != w {
			t.Fatalf("call %d = %v, want %v", i, calls[i], w)
		}
	}
	// Eager mode: one ship per row.
	calls = nil
	runOp(t, ShipRows(ship, 64, true, nil, nil), in)
	if len(calls) != 4 {
		t.Fatalf("eager calls %v", calls)
	}
}

func TestShipPartialFlushesRoutesOnPunct(t *testing.T) {
	var shipped, flushed int
	var mu sync.Mutex
	ship := func(window uint64, partials []tuple.Tuple) int {
		mu.Lock()
		shipped += len(partials)
		mu.Unlock()
		return len(partials)
	}
	flush := func() {
		mu.Lock()
		flushed++
		mu.Unlock()
	}
	in := []dataflow.Msg{
		{Kind: dataflow.Data, T: row("g", 1), Seq: 1},
		dataflow.BatchMsg([]tuple.Tuple{row("g", 2), row("h", 3)}, 1),
		dataflow.PunctMsg(1, time.Now()),
	}
	runOp(t, ShipPartial(ship, flush, nil), in)
	if shipped != 3 || flushed != 1 {
		t.Fatalf("shipped=%d flushed=%d", shipped, flushed)
	}
}

func TestInletNeverBlocksAndDrainsInOrder(t *testing.T) {
	in := NewInlet()
	const n = 10000
	for i := 0; i < n; i++ {
		in.Push(dataflow.DataMsg(row(i))) // far beyond any channel depth
	}
	in.Close()
	got := runOp(t, in.Source, nil)
	rows := dataMsgs(got)
	if len(rows) != n {
		t.Fatalf("drained %d of %d", len(rows), n)
	}
	for i, r := range rows {
		if r[0].I != int64(i) {
			t.Fatalf("order broken at %d: %v", i, r)
		}
	}
}

func TestPipelineStatsCount(t *testing.T) {
	p := NewPipeline("participant")
	src := p.Add("src", SliceSource([]tuple.Tuple{row("a", 1), row("b", 2)}, 1))
	pred := &expr.Cmp{Op: expr.GT, L: &expr.Col{Index: 1}, R: &expr.Lit{V: tuple.Int(1)}}
	f := p.Add("filter", Filter(pred))
	p.Connect(src, f)
	var out []tuple.Tuple
	sink := p.Add("sink", FuncSink(func(t tuple.Tuple) { out = append(out, t) }))
	p.Connect(f, sink)
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats := p.Stats()
	if len(stats) != 3 {
		t.Fatalf("stats %v", stats)
	}
	byOp := map[string]int{}
	for i, s := range stats {
		if s.Stage != "participant" || s.Nodes != 1 {
			t.Fatalf("stat %+v", s)
		}
		byOp[s.Op] = i
	}
	if s := stats[byOp["filter"]]; s.RowsIn != 2 || s.RowsOut != 1 || s.BytesOut == 0 {
		t.Fatalf("filter stats %+v", s)
	}
	if s := stats[byOp["sink"]]; s.RowsIn != 1 {
		t.Fatalf("sink stats %+v", s)
	}
}

package physical

import (
	"sync/atomic"
	"time"

	"repro/internal/dataflow"
	"repro/internal/plan"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// Counters instruments one physical operator instance. Operators
// update them from their single run goroutine; snapshots may be taken
// concurrently (the EXPLAIN ANALYZE gather runs while collector
// pipelines are still draining), hence the atomics.
type Counters struct {
	Stage string
	Name  string
	// detail enables the byte counters that require re-encoding
	// tuples (EmitRow). Off for pipelines compiled without Analyze,
	// so the hot path never pays for instrumentation nobody reads;
	// exchange/ship operators report bytes through EmitRows (the
	// payload size they computed anyway) regardless.
	detail bool

	rowsIn   atomic.Uint64
	rowsOut  atomic.Uint64
	bytesOut atomic.Uint64
	puncts   atomic.Uint64
	busy     atomic.Int64

	// Memory-budget observability (hybrid-hash join): high-water mark
	// of resident build bytes, bytes spilled to temp files, and
	// completed re-join passes over spilled partitions.
	peakMem   atomic.Int64
	spilled   atomic.Uint64
	spillPass atomic.Uint64
}

// RecvRow counts one consumed data tuple.
func (c *Counters) RecvRow() { c.rowsIn.Add(1) }

// RecvRows counts n consumed data tuples (one batch receive).
func (c *Counters) RecvRows(n int) { c.rowsIn.Add(uint64(n)) }

// RecvPunct counts one processed punctuation.
func (c *Counters) RecvPunct() { c.puncts.Add(1) }

// EmitRow counts one produced tuple; its encoded size is measured
// only when detail instrumentation is on (encoding costs an
// allocation per tuple).
func (c *Counters) EmitRow(t tuple.Tuple) {
	c.rowsOut.Add(1)
	if c.detail {
		w := wire.GetWriter()
		t.Encode(w)
		c.bytesOut.Add(uint64(w.Len()))
		wire.PutWriter(w)
	}
}

// EmitRows counts n produced tuples carrying bytes encoded bytes —
// used by ship operators, which know the exact wire payload size.
func (c *Counters) EmitRows(n, bytes int) {
	c.rowsOut.Add(uint64(n))
	c.bytesOut.Add(uint64(bytes))
}

// EmitBatch counts one produced batch; byte sizes are measured on a
// pooled writer only under detail instrumentation.
func (c *Counters) EmitBatch(ts []tuple.Tuple) {
	c.rowsOut.Add(uint64(len(ts)))
	if c.detail {
		w := wire.GetWriter()
		for _, t := range ts {
			t.Encode(w)
		}
		c.bytesOut.Add(uint64(w.Len()))
		wire.PutWriter(w)
	}
}

// EmitMsg counts a produced message in either form.
func (c *Counters) EmitMsg(m dataflow.Msg) {
	if m.Kind != dataflow.Data {
		return
	}
	if m.Batch != nil {
		c.EmitBatch(m.Batch)
		return
	}
	c.EmitRow(m.T)
}

// Busy accrues processing time since start.
func (c *Counters) Busy(start time.Time) { c.busy.Add(int64(time.Since(start))) }

// ObserveMem raises the resident-memory high-water mark to bytes.
func (c *Counters) ObserveMem(bytes int64) {
	for {
		cur := c.peakMem.Load()
		if bytes <= cur || c.peakMem.CompareAndSwap(cur, bytes) {
			return
		}
	}
}

// AddSpilled counts bytes written to spill files.
func (c *Counters) AddSpilled(bytes int64) { c.spilled.Add(uint64(bytes)) }

// AddSpillPass counts one completed re-join pass over spilled state.
func (c *Counters) AddSpillPass() { c.spillPass.Add(1) }

// Stats snapshots the counters as one plan.OpStats entry.
func (c *Counters) Stats() plan.OpStats {
	return plan.OpStats{
		Stage:     c.Stage,
		Op:        c.Name,
		Nodes:     1,
		RowsIn:    c.rowsIn.Load(),
		RowsOut:   c.rowsOut.Load(),
		BytesOut:  c.bytesOut.Load(),
		Puncts:    c.puncts.Load(),
		BusyNanos: uint64(c.busy.Load()),
		PeakMem:   uint64(c.peakMem.Load()),
		Spilled:   c.spilled.Load(),
		Passes:    c.spillPass.Load(),
	}
}

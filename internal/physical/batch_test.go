package physical

// Tests for the batch-at-a-time execution contract: the ownership
// rule on dataflow.Msg (recycled containers never corrupt retained
// tuples — run these under -race, as CI does), and the batch-size
// invariance property (any vectorization width produces identical
// window contents and identical EXPLAIN ANALYZE row counts).

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/dataflow"
	"repro/internal/expr"
	"repro/internal/ops"
	"repro/internal/tuple"
)

// TestBatchRecycleDoesNotCorruptRetainedTuples is the regression test
// for the batch-reuse ownership rule: a source that draws containers
// from the pool keeps emitting (and overwriting slots of containers
// the sink has recycled) while JoinProbe retains tuples from earlier
// batches in its hash tables. If any operator retained a *container*
// (or wrote output tuples through into input backing arrays — the
// Concat/Project aliasing hazard), the joined rows would corrupt or
// the race detector would fire.
func TestBatchRecycleDoesNotCorruptRetainedTuples(t *testing.T) {
	const n = 2000
	p := NewPipeline("test")
	mkSource := func(col0 string) OpFunc {
		return func(c *Counters) dataflow.RunFunc {
			return func(ctx context.Context, _ []<-chan dataflow.Msg, outs []chan<- dataflow.Msg) error {
				batch := dataflow.GetBatch()
				for i := 0; i < n; i++ {
					batch = append(batch, tuple.Tuple{tuple.String(fmt.Sprintf("%s-%d", col0, i)), tuple.Int(int64(i))})
					if len(batch) >= 16 {
						if !dataflow.EmitAll(ctx, outs, dataflow.BatchMsg(batch, 0)) {
							return nil
						}
						// Deliberately churn the pool: the next
						// container may be one the sink just recycled,
						// and filling it mutates slots that earlier
						// held tuples now retained by the join.
						batch = dataflow.GetBatch()
					}
				}
				if len(batch) > 0 {
					dataflow.EmitAll(ctx, outs, dataflow.BatchMsg(batch, 0))
				} else {
					dataflow.PutBatch(batch)
				}
				return nil
			}
		}
	}
	l := p.Add("src-l", mkSource("l"))
	r := p.Add("src-r", mkSource("r"))
	jp := p.Add("join-probe", JoinProbe([2]int{2, 2}, [2][]int{{1}, {1}}))
	p.Connect(l, jp)
	p.Connect(r, jp)
	var mu sync.Mutex
	joined := make(map[int64]int)
	bad := 0
	sink := p.Add("sink", FuncSink(func(tp tuple.Tuple) {
		mu.Lock()
		if len(tp) == 4 && tp[1].Equal(tp[3]) {
			joined[tp[1].I]++
		} else {
			bad++
		}
		mu.Unlock()
	}))
	p.Connect(jp, sink)
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("%d corrupted joined rows", bad)
	}
	if len(joined) != n {
		t.Fatalf("joined %d distinct keys, want %d", len(joined), n)
	}
	for k, cnt := range joined {
		if cnt != 1 {
			t.Fatalf("key %d joined %d times, want 1", k, cnt)
		}
	}
}

// windowRun drives a deterministic continuous-style pipeline (scripted
// samples + punctuations through WindowBuffer and PartialAgg) at one
// batch size and returns the per-window partial rows plus the
// per-operator row counters.
func windowRun(t *testing.T, batchSize int) (map[uint64][]string, map[string][2]uint64) {
	t.Helper()
	base := time.Unix(1_700_000_000, 0)
	var script []dataflow.Msg
	// Three tumbling 1s windows; samples for group g0/g1 interleaved,
	// deliberately crossing batch boundaries for every size under test.
	seq := uint64(100)
	for w := 0; w < 3; w++ {
		open := base.Add(time.Duration(w) * time.Second)
		for i := 0; i < 50; i++ {
			at := open.Add(time.Duration(10+i*15) * time.Millisecond)
			g := fmt.Sprintf("g%d", i%2)
			script = append(script, dataflow.Msg{Kind: dataflow.Data,
				T: tuple.Tuple{tuple.String(g), tuple.Int(int64(w*1000 + i))}, Time: at})
		}
		script = append(script, dataflow.PunctMsg(seq+uint64(w), open.Add(time.Second)))
	}

	p := NewPipeline("test")
	src := p.Add("src", func(c *Counters) dataflow.RunFunc {
		return func(ctx context.Context, _ []<-chan dataflow.Msg, outs []chan<- dataflow.Msg) error {
			for _, m := range script {
				if !dataflow.EmitAll(ctx, outs, m) {
					return nil
				}
			}
			return nil
		}
	})
	pred := &expr.Cmp{Op: expr.GE, L: &expr.Col{Index: 1}, R: &expr.Lit{V: tuple.Int(0)}}
	f := p.Add("filter", Filter(pred))
	p.Connect(src, f)
	wb := p.Add("window", WindowBuffer(time.Second, batchSize))
	p.Connect(f, wb)
	agg := p.Add("partial-agg", PartialAgg([]int{0}, []ops.AggSpec{{Func: ops.Sum, ArgCol: 1}}, false, false, batchSize))
	p.Connect(wb, agg)
	var mu sync.Mutex
	windows := make(map[uint64][]string)
	sink := p.Add("sink", func(c *Counters) dataflow.RunFunc {
		return func(ctx context.Context, ins []<-chan dataflow.Msg, _ []chan<- dataflow.Msg) error {
			var scratch [1]tuple.Tuple
			for m := range dataflow.Merge(ctx, ins) {
				if m.Kind != dataflow.Data {
					continue
				}
				mu.Lock()
				for _, tp := range m.Tuples(&scratch) {
					windows[m.Seq] = append(windows[m.Seq], tp.String())
				}
				mu.Unlock()
			}
			return nil
		}
	})
	p.Connect(agg, sink)
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	counts := make(map[string][2]uint64)
	for _, s := range p.Stats() {
		if s.Op == "sink" {
			continue // sink counters unused above
		}
		counts[s.Op] = [2]uint64{s.RowsIn, s.RowsOut}
	}
	return windows, counts
}

// TestBatchSizeInvariance is the punctuation/batch interleaving
// property test: every vectorization width must produce identical
// window contents and identical EXPLAIN ANALYZE row counts, with
// batch size 1 (the exact tuple-at-a-time semantics) as the oracle.
func TestBatchSizeInvariance(t *testing.T) {
	wantWindows, wantCounts := windowRun(t, 1)
	if len(wantWindows) != 3 {
		t.Fatalf("oracle produced %d windows, want 3", len(wantWindows))
	}
	for _, rows := range wantWindows {
		if len(rows) != 2 { // two groups per window
			t.Fatalf("oracle window has %d partials, want 2: %v", len(rows), rows)
		}
	}
	for _, bs := range []int{7, 64, 1024} {
		gotWindows, gotCounts := windowRun(t, bs)
		if !reflect.DeepEqual(gotWindows, wantWindows) {
			t.Fatalf("batch size %d window contents diverged:\n got %v\nwant %v", bs, gotWindows, wantWindows)
		}
		if !reflect.DeepEqual(gotCounts, wantCounts) {
			t.Fatalf("batch size %d row counters diverged:\n got %v\nwant %v", bs, gotCounts, wantCounts)
		}
	}
}

// Package sqlparser implements the declarative front end: a lexer and
// recursive-descent parser for the SQL subset PIER exposes —
// single-block SELECT with joins, grouping, HAVING, ORDER BY/LIMIT,
// the continuous-query WINDOW/SLIDE clauses, and WITH RECURSIVE for
// the recursive network queries of the paper's topology application.
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tkEOF tokenKind = iota
	tkIdent
	tkKeyword
	tkNumber // integer or float literal
	tkString // '...' literal
	tkOp     // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords are upper-cased; idents preserve case
	pos  int
}

func (t token) String() string {
	if t.kind == tkEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true,
	"LIMIT": true, "AS": true, "AND": true, "OR": true, "NOT": true,
	"JOIN": true, "ON": true, "IS": true, "NULL": true, "TRUE": true,
	"FALSE": true, "ASC": true, "DESC": true, "WINDOW": true,
	"SLIDE": true, "WITH": true, "RECURSIVE": true, "UNION": true,
	"ALL": true, "INNER": true, "LIVE": true, "ANALYZE": true,
}

type lexError struct {
	pos int
	msg string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("sql: position %d: %s", e.pos, e.msg)
}

// lex tokenizes the input.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(input) && input[i+1] == '-':
			// Line comment.
			for i < len(input) && input[i] != '\n' {
				i++
			}
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= len(input) {
					return nil, &lexError{pos: i, msg: "unterminated string literal"}
				}
				if input[j] == '\'' {
					if j+1 < len(input) && input[j+1] == '\'' {
						sb.WriteByte('\'') // escaped quote
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			toks = append(toks, token{kind: tkString, text: sb.String(), pos: i})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			seenDot := false
			for j < len(input) {
				if input[j] == '.' && !seenDot {
					seenDot = true
					j++
					continue
				}
				if input[j] < '0' || input[j] > '9' {
					break
				}
				j++
			}
			toks = append(toks, token{kind: tkNumber, text: input[i:j], pos: i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < len(input) && isIdentPart(rune(input[j])) {
				j++
			}
			word := input[i:j]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{kind: tkKeyword, text: upper, pos: i})
			} else {
				toks = append(toks, token{kind: tkIdent, text: word, pos: i})
			}
			i = j
		default:
			// Multi-char operators first.
			two := ""
			if i+1 < len(input) {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				toks = append(toks, token{kind: tkOp, text: two, pos: i})
				i += 2
				continue
			}
			switch c {
			case ',', '(', ')', '*', '.', '=', '<', '>', '+', '-', '/', '%', ';':
				toks = append(toks, token{kind: tkOp, text: string(c), pos: i})
				i++
			default:
				return nil, &lexError{pos: i, msg: fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, token{kind: tkEOF, pos: len(input)})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

package sqlparser

import "strings"

// Normalize renders a statement's token stream in one canonical
// spelling, so textually different but token-identical queries share a
// plan-cache key: keywords upper-cased (the lexer already does this),
// whitespace and comments collapsed, string literals re-quoted with
// doubled-quote escaping, and the optional trailing semicolon dropped.
// It does not parse — a normalized string is not guaranteed to be a
// valid statement, only to be identical for token-identical inputs.
func Normalize(input string) (string, error) {
	toks, err := lex(input)
	if err != nil {
		return "", err
	}
	// Drop one trailing semicolon.
	if n := len(toks); n >= 2 && toks[n-2].kind == tkOp && toks[n-2].text == ";" {
		toks = append(toks[:n-2], toks[n-1])
	}
	var sb strings.Builder
	sb.Grow(len(input))
	prev := token{kind: tkEOF}
	for _, t := range toks {
		if t.kind == tkEOF {
			break
		}
		if sb.Len() > 0 && needSpace(prev, t) {
			sb.WriteByte(' ')
		}
		switch t.kind {
		case tkString:
			sb.WriteByte('\'')
			sb.WriteString(strings.ReplaceAll(t.text, "'", "''"))
			sb.WriteByte('\'')
		default:
			sb.WriteString(t.text)
		}
		prev = t
	}
	return sb.String(), nil
}

// needSpace decides token separation in the canonical rendering: no
// space around '.', before ',' / ')' / ';', or after '('. Everything
// else is single-spaced.
func needSpace(prev, cur token) bool {
	if prev.kind == tkOp {
		switch prev.text {
		case ".", "(":
			return false
		}
	}
	if cur.kind == tkOp {
		switch cur.text {
		case ".", ",", ")", ";":
			return false
		case "(":
			// Function calls bind tight: IDENT( — but keywords keep the
			// space (e.g. "AS (" in WITH RECURSIVE).
			return prev.kind != tkIdent
		}
	}
	return true
}

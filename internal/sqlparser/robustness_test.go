package sqlparser

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics mutates valid queries randomly; every mutation
// must either parse or return an error — never panic.
func TestParseNeverPanics(t *testing.T) {
	seeds := []string{
		"SELECT a, b FROM t WHERE a > 5 AND b = 'x' GROUP BY a HAVING COUNT(*) > 1 ORDER BY a DESC LIMIT 3",
		"SELECT SUM(rate) FROM traffic WINDOW 5 s SLIDE 1 s LIVE 60 s",
		"WITH RECURSIVE r AS (SELECT a FROM t UNION SELECT t.a, r.b FROM t JOIN r ON t.a = r.b) SELECT * FROM r",
		"SELECT a.x, b.y FROM a JOIN b ON a.k = b.k WHERE a.x IS NOT NULL",
	}
	rng := rand.New(rand.NewSource(7))
	mutate := func(s string) string {
		b := []byte(s)
		for i := 0; i < 1+rng.Intn(4); i++ {
			switch rng.Intn(4) {
			case 0: // delete a byte
				if len(b) > 1 {
					p := rng.Intn(len(b))
					b = append(b[:p], b[p+1:]...)
				}
			case 1: // duplicate a byte
				p := rng.Intn(len(b))
				b = append(b[:p], append([]byte{b[p]}, b[p:]...)...)
			case 2: // random printable byte
				b[rng.Intn(len(b))] = byte(32 + rng.Intn(95))
			case 3: // truncate
				b = b[:rng.Intn(len(b))+1]
			}
		}
		return string(b)
	}
	for i := 0; i < 3000; i++ {
		input := mutate(seeds[i%len(seeds)])
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%q) panicked: %v", input, r)
				}
			}()
			_, _ = Parse(input)
		}()
	}
}

// TestQuickParseArbitraryStrings throws fully random strings at the
// parser: no panics, no hangs.
func TestQuickParseArbitraryStrings(t *testing.T) {
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse(%q) panicked: %v", s, r)
			}
		}()
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTripThroughString verifies parsed expressions render to
// strings that parse back to the same rendering (a weak printer/parser
// consistency check for the WHERE grammar).
func TestRoundTripThroughString(t *testing.T) {
	queries := []string{
		"SELECT a FROM t WHERE (a + 1) * 2 > 6 AND NOT b = 'x'",
		"SELECT a FROM t WHERE a IS NULL OR b IS NOT NULL",
		"SELECT a FROM t WHERE LOWER(s) = 'q'",
	}
	for _, q := range queries {
		s1, err := Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		rendered := "SELECT a FROM t WHERE " + s1.Where.String()
		s2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of %q: %v", rendered, err)
		}
		if s1.Where.String() != s2.Where.String() {
			t.Fatalf("unstable rendering: %q vs %q", s1.Where, s2.Where)
		}
	}
}

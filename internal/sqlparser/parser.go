package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/expr"
	"repro/internal/tuple"
)

// SelectItem is one output column: an expression and optional alias.
type SelectItem struct {
	Expr  expr.Expr
	Alias string
}

// TableRef names an input relation with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// Binding returns the name the query refers to this table by.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr expr.Expr
	Desc bool
}

// WithRecursive is the recursive CTE form:
// WITH RECURSIVE name AS (base UNION [ALL] step) outer-select.
type WithRecursive struct {
	Name string
	Base *SelectStmt
	Step *SelectStmt
}

// AnalyzeStmt is the `ANALYZE [table, ...]` statement: measure
// table statistics from the DHT and install them in the catalog. An
// empty table list means every table the node has defined.
type AnalyzeStmt struct {
	Tables []string
}

// SelectStmt is the parsed single-block query.
type SelectStmt struct {
	Distinct bool
	Star     bool
	Items    []SelectItem
	From     []TableRef
	JoinOn   expr.Expr // set when JOIN ... ON syntax was used
	Where    expr.Expr
	GroupBy  []string
	Having   expr.Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent

	// Continuous-query clauses: WINDOW makes the query continuous
	// over a sliding window; SLIDE defaults to WINDOW (tumbling);
	// LIVE bounds the query's total lifetime (0 = until cancelled).
	Window time.Duration
	Slide  time.Duration
	Live   time.Duration

	With *WithRecursive

	// Analyze, when non-nil, marks the whole statement as an ANALYZE
	// — no other clause is meaningful.
	Analyze *AnalyzeStmt
}

// IsContinuous reports whether the statement is a continuous query.
func (s *SelectStmt) IsContinuous() bool { return s.Window > 0 }

// AggCall is an aggregate invocation discovered in the select list.
type AggCall struct {
	Name string    // SUM, COUNT, AVG, MIN, MAX
	Arg  expr.Expr // nil for COUNT(*)
}

// AggFuncs are the recognized aggregate function names.
var AggFuncs = map[string]bool{"SUM": true, "COUNT": true, "AVG": true, "MIN": true, "MAX": true}

// countStarSentinel marks COUNT(*) in the AST (no argument).
type countStarSentinel struct{}

func (countStarSentinel) Eval(tuple.Tuple) (tuple.Value, error) {
	return tuple.Null(), fmt.Errorf("sql: COUNT(*) sentinel evaluated")
}
func (countStarSentinel) String() string          { return "*" }
func (countStarSentinel) Walk(fn func(expr.Expr)) {}

// IsCountStar reports whether e is the COUNT(*) argument sentinel.
func IsCountStar(e expr.Expr) bool {
	_, ok := e.(countStarSentinel)
	return ok
}

// Parse parses one statement.
func Parse(input string) (*SelectStmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon.
	if p.peek().kind == tkOp && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tkEOF {
		return nil, p.errf("unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: "+format, args...)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().kind == tkKeyword && p.peek().text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *parser) acceptOp(op string) bool {
	if p.peek().kind == tkOp && p.peek().text == op {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q, found %s", op, p.peek())
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.peek().kind != tkIdent {
		return "", p.errf("expected identifier, found %s", p.peek())
	}
	return p.next().text, nil
}

func (p *parser) parseStatement() (*SelectStmt, error) {
	if p.acceptKeyword("ANALYZE") {
		stmt := &SelectStmt{Limit: -1, Analyze: &AnalyzeStmt{}}
		if p.peek().kind != tkIdent {
			return stmt, nil // bare ANALYZE: every defined table
		}
		for {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			stmt.Analyze.Tables = append(stmt.Analyze.Tables, name)
			if !p.acceptOp(",") {
				break
			}
		}
		return stmt, nil
	}
	if p.acceptKeyword("WITH") {
		if err := p.expectKeyword("RECURSIVE"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AS"); err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		base, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("UNION"); err != nil {
			return nil, err
		}
		p.acceptKeyword("ALL")
		step, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		outer, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		outer.With = &WithRecursive{Name: name, Base: base, Step: step}
		return outer, nil
	}
	return p.parseSelect()
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.acceptKeyword("DISTINCT")

	// Select list.
	if p.acceptOp("*") {
		stmt.Star = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				alias, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			} else if p.peek().kind == tkIdent {
				item.Alias = p.next().text
			}
			stmt.Items = append(stmt.Items, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	first, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = append(stmt.From, first)
	for {
		if p.acceptOp(",") {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			stmt.From = append(stmt.From, ref)
			continue
		}
		if p.acceptKeyword("INNER") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.acceptKeyword("JOIN") {
			break
		}
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, ref)
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if stmt.JoinOn == nil {
			stmt.JoinOn = on
		} else {
			stmt.JoinOn = &expr.And{L: stmt.JoinOn, R: on}
		}
	}

	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnName()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, col)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		if p.peek().kind != tkNumber {
			return nil, p.errf("expected number after LIMIT, found %s", p.peek())
		}
		n, err := strconv.Atoi(p.next().text)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT value")
		}
		stmt.Limit = n
	}
	if p.acceptKeyword("WINDOW") {
		d, err := p.parseDuration()
		if err != nil {
			return nil, err
		}
		stmt.Window = d
		if p.acceptKeyword("SLIDE") {
			s, err := p.parseDuration()
			if err != nil {
				return nil, err
			}
			stmt.Slide = s
		} else {
			stmt.Slide = d
		}
	}
	if p.acceptKeyword("LIVE") {
		d, err := p.parseDuration()
		if err != nil {
			return nil, err
		}
		stmt.Live = d
	}
	return stmt, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if p.peek().kind == tkIdent {
		ref.Alias = p.next().text
	}
	return ref, nil
}

// parseColumnName parses ident or ident.ident.
func (p *parser) parseColumnName() (string, error) {
	name, err := p.expectIdent()
	if err != nil {
		return "", err
	}
	if p.acceptOp(".") {
		col, err := p.expectIdent()
		if err != nil {
			return "", err
		}
		return name + "." + col, nil
	}
	return name, nil
}

// parseDuration parses NUMBER IDENT where IDENT is a unit (ms, s, m,
// h), e.g. "WINDOW 5 s" or the fused "5s" (number token then ident).
func (p *parser) parseDuration() (time.Duration, error) {
	if p.peek().kind != tkNumber {
		return 0, p.errf("expected duration, found %s", p.peek())
	}
	numText := p.next().text
	val, err := strconv.ParseFloat(numText, 64)
	if err != nil {
		return 0, p.errf("bad duration value %q", numText)
	}
	if p.peek().kind != tkIdent {
		return 0, p.errf("expected duration unit after %s", numText)
	}
	unit := strings.ToLower(p.next().text)
	var mult time.Duration
	switch unit {
	case "ms":
		mult = time.Millisecond
	case "s", "sec", "seconds":
		mult = time.Second
	case "m", "min", "minutes":
		mult = time.Minute
	case "h":
		mult = time.Hour
	default:
		return 0, p.errf("unknown duration unit %q", unit)
	}
	return time.Duration(val * float64(mult)), nil
}

// ---------------------------------------------------------------------------
// Expression parsing (precedence climbing)

func (p *parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &expr.Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &expr.And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &expr.Not{E: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (expr.Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("IS") {
		negate := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &expr.IsNull{E: l, Negate: negate}, nil
	}
	ops := map[string]expr.CmpOp{
		"=": expr.EQ, "<>": expr.NE, "!=": expr.NE,
		"<": expr.LT, "<=": expr.LE, ">": expr.GT, ">=": expr.GE,
	}
	if p.peek().kind == tkOp {
		if op, ok := ops[p.peek().text]; ok {
			p.next()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &expr.Cmp{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (expr.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &expr.Arith{Op: expr.Add, L: l, R: r}
		case p.acceptOp("-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &expr.Arith{Op: expr.Sub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMultiplicative() (expr.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &expr.Arith{Op: expr.Mul, L: l, R: r}
		case p.acceptOp("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &expr.Arith{Op: expr.Div, L: l, R: r}
		case p.acceptOp("%"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &expr.Arith{Op: expr.Mod, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (expr.Expr, error) {
	if p.acceptOp("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &expr.Arith{Op: expr.Sub, L: expr.NewLit(tuple.Int(0)), R: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tkNumber:
		p.next()
		if strings.ContainsRune(t.text, '.') {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad float literal %q", t.text)
			}
			return expr.NewLit(tuple.Float(f)), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer literal %q", t.text)
		}
		return expr.NewLit(tuple.Int(i)), nil
	case tkString:
		p.next()
		return expr.NewLit(tuple.String(t.text)), nil
	case tkKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return expr.NewLit(tuple.Null()), nil
		case "TRUE":
			p.next()
			return expr.NewLit(tuple.Bool(true)), nil
		case "FALSE":
			p.next()
			return expr.NewLit(tuple.Bool(false)), nil
		}
		return nil, p.errf("unexpected keyword %s in expression", t)
	case tkIdent:
		p.next()
		// Function call?
		if p.acceptOp("(") {
			var args []expr.Expr
			if p.acceptOp("*") {
				// COUNT(*) and friends.
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &expr.Func{Name: strings.ToUpper(t.text), Args: []expr.Expr{countStarSentinel{}}}, nil
			}
			if !p.acceptOp(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.acceptOp(",") {
						break
					}
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			}
			return &expr.Func{Name: strings.ToUpper(t.text), Args: args}, nil
		}
		// Qualified column?
		if p.acceptOp(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return expr.NewCol(t.text + "." + col), nil
		}
		return expr.NewCol(t.text), nil
	case tkOp:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected %s in expression", t)
}

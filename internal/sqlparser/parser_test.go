package sqlparser

import (
	"strings"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/tuple"
)

func mustParse(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

func TestSimpleSelect(t *testing.T) {
	s := mustParse(t, "SELECT a, b FROM t")
	if len(s.Items) != 2 || s.From[0].Name != "t" || s.Star {
		t.Fatalf("%+v", s)
	}
	if c, ok := s.Items[0].Expr.(*expr.Col); !ok || c.Name != "a" {
		t.Fatalf("item 0: %v", s.Items[0].Expr)
	}
}

func TestSelectStar(t *testing.T) {
	s := mustParse(t, "SELECT * FROM t")
	if !s.Star || len(s.Items) != 0 {
		t.Fatalf("%+v", s)
	}
}

func TestWhereClause(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE a > 5 AND b = 'x'")
	if s.Where == nil {
		t.Fatal("no where")
	}
	cs := expr.Conjuncts(s.Where)
	if len(cs) != 2 {
		t.Fatalf("conjuncts: %d", len(cs))
	}
}

func TestAliases(t *testing.T) {
	s := mustParse(t, "SELECT a AS x, b y FROM t AS u")
	if s.Items[0].Alias != "x" || s.Items[1].Alias != "y" {
		t.Fatalf("%+v", s.Items)
	}
	if s.From[0].Binding() != "u" {
		t.Fatalf("table alias: %+v", s.From[0])
	}
	s2 := mustParse(t, "SELECT a FROM t u")
	if s2.From[0].Binding() != "u" {
		t.Fatalf("bare alias: %+v", s2.From[0])
	}
}

func TestGroupByHaving(t *testing.T) {
	s := mustParse(t, "SELECT rule, SUM(hits) FROM alerts GROUP BY rule HAVING SUM(hits) > 100")
	if len(s.GroupBy) != 1 || s.GroupBy[0] != "rule" {
		t.Fatalf("group by: %v", s.GroupBy)
	}
	if s.Having == nil {
		t.Fatal("no having")
	}
	f, ok := s.Items[1].Expr.(*expr.Func)
	if !ok || f.Name != "SUM" {
		t.Fatalf("agg not parsed: %v", s.Items[1].Expr)
	}
}

func TestCountStar(t *testing.T) {
	s := mustParse(t, "SELECT COUNT(*) FROM t")
	f := s.Items[0].Expr.(*expr.Func)
	if f.Name != "COUNT" || len(f.Args) != 1 || !IsCountStar(f.Args[0]) {
		t.Fatalf("%+v", f)
	}
}

func TestOrderByLimit(t *testing.T) {
	s := mustParse(t, "SELECT a, b FROM t ORDER BY b DESC, a LIMIT 10")
	if len(s.OrderBy) != 2 || !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Fatalf("%+v", s.OrderBy)
	}
	if s.Limit != 10 {
		t.Fatalf("limit %d", s.Limit)
	}
	if mustParse(t, "SELECT a FROM t").Limit != -1 {
		t.Fatal("absent limit not -1")
	}
}

func TestJoinOn(t *testing.T) {
	s := mustParse(t, "SELECT * FROM a JOIN b ON a.k = b.k WHERE a.v > 1")
	if len(s.From) != 2 || s.JoinOn == nil {
		t.Fatalf("%+v", s)
	}
	s2 := mustParse(t, "SELECT * FROM a INNER JOIN b ON a.k = b.k")
	if len(s2.From) != 2 || s2.JoinOn == nil {
		t.Fatalf("INNER JOIN: %+v", s2)
	}
}

func TestImplicitCrossJoin(t *testing.T) {
	s := mustParse(t, "SELECT * FROM a, b WHERE a.k = b.k")
	if len(s.From) != 2 || s.JoinOn != nil {
		t.Fatalf("%+v", s)
	}
}

func TestWindowSlide(t *testing.T) {
	s := mustParse(t, "SELECT SUM(rate) FROM traffic WINDOW 5 s SLIDE 1 s")
	if s.Window != 5*time.Second || s.Slide != time.Second {
		t.Fatalf("window=%v slide=%v", s.Window, s.Slide)
	}
	if !s.IsContinuous() {
		t.Fatal("not continuous")
	}
	// SLIDE defaults to WINDOW.
	s2 := mustParse(t, "SELECT SUM(rate) FROM traffic WINDOW 500 ms")
	if s2.Slide != 500*time.Millisecond {
		t.Fatalf("default slide %v", s2.Slide)
	}
}

func TestLiveClause(t *testing.T) {
	s := mustParse(t, "SELECT SUM(rate) FROM traffic WINDOW 1 s LIVE 60 s")
	if s.Live != time.Minute {
		t.Fatalf("live %v", s.Live)
	}
}

func TestWithRecursive(t *testing.T) {
	s := mustParse(t, `WITH RECURSIVE reach AS (
		SELECT src, dst FROM link
		UNION
		SELECT link.src, reach.dst FROM link JOIN reach ON link.dst = reach.src
	) SELECT * FROM reach`)
	if s.With == nil || s.With.Name != "reach" {
		t.Fatalf("%+v", s.With)
	}
	if s.With.Base == nil || s.With.Step == nil {
		t.Fatal("missing base/step")
	}
	if len(s.With.Step.From) != 2 {
		t.Fatalf("step from: %+v", s.With.Step.From)
	}
}

func TestExpressionPrecedence(t *testing.T) {
	s := mustParse(t, "SELECT a + b * 2 FROM t WHERE a = 1 OR b = 2 AND c = 3")
	// a + (b*2)
	add, ok := s.Items[0].Expr.(*expr.Arith)
	if !ok || add.Op != expr.Add {
		t.Fatalf("top op: %v", s.Items[0].Expr)
	}
	if mul, ok := add.R.(*expr.Arith); !ok || mul.Op != expr.Mul {
		t.Fatalf("rhs: %v", add.R)
	}
	// a=1 OR (b=2 AND c=3)
	or, ok := s.Where.(*expr.Or)
	if !ok {
		t.Fatalf("where: %v", s.Where)
	}
	if _, ok := or.R.(*expr.And); !ok {
		t.Fatalf("or rhs: %v", or.R)
	}
}

func TestParenthesesOverridePrecedence(t *testing.T) {
	s := mustParse(t, "SELECT (a + b) * 2 FROM t")
	mul := s.Items[0].Expr.(*expr.Arith)
	if mul.Op != expr.Mul {
		t.Fatalf("top: %v", mul)
	}
	if add, ok := mul.L.(*expr.Arith); !ok || add.Op != expr.Add {
		t.Fatalf("lhs: %v", mul.L)
	}
}

func TestUnaryMinus(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE a > -5")
	cmp := s.Where.(*expr.Cmp)
	v, err := cmp.R.Eval(nil)
	if err != nil || v.I != -5 {
		t.Fatalf("unary minus: %v %v", v, err)
	}
}

func TestLiteals(t *testing.T) {
	s := mustParse(t, "SELECT 1, 2.5, 'it''s', NULL, TRUE, FALSE FROM t")
	want := []tuple.Value{
		tuple.Int(1), tuple.Float(2.5), tuple.String("it's"),
		tuple.Null(), tuple.Bool(true), tuple.Bool(false),
	}
	for i, item := range s.Items {
		v, err := item.Expr.Eval(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Equal(want[i]) && !(v.IsNull() && want[i].IsNull()) {
			t.Fatalf("literal %d: %v want %v", i, v, want[i])
		}
	}
}

func TestIsNullSyntax(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE a IS NULL AND b IS NOT NULL")
	cs := expr.Conjuncts(s.Where)
	if len(cs) != 2 {
		t.Fatalf("%d conjuncts", len(cs))
	}
	if n, ok := cs[0].(*expr.IsNull); !ok || n.Negate {
		t.Fatalf("first: %v", cs[0])
	}
	if n, ok := cs[1].(*expr.IsNull); !ok || !n.Negate {
		t.Fatalf("second: %v", cs[1])
	}
}

func TestQualifiedColumns(t *testing.T) {
	s := mustParse(t, "SELECT t.a FROM t WHERE t.a > 0")
	if c := s.Items[0].Expr.(*expr.Col); c.Name != "t.a" {
		t.Fatalf("%v", c.Name)
	}
}

func TestDistinct(t *testing.T) {
	if !mustParse(t, "SELECT DISTINCT a FROM t").Distinct {
		t.Fatal("distinct not set")
	}
}

func TestComments(t *testing.T) {
	s := mustParse(t, "SELECT a -- the column\nFROM t")
	if len(s.Items) != 1 {
		t.Fatalf("%+v", s)
	}
}

func TestTrailingSemicolon(t *testing.T) {
	mustParse(t, "SELECT a FROM t;")
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t LIMIT",
		"SELECT a FROM t extra garbage",
		"SELECT a FROM t WINDOW",
		"SELECT a FROM t WINDOW 5 parsecs",
		"SELECT 'unterminated FROM t",
		"WITH RECURSIVE r AS (SELECT a FROM t) SELECT * FROM r", // missing UNION
		"SELECT a FROM t WHERE a @ 1",
		"SELECT (a FROM t",
		"SELECT COUNT(* FROM t",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Fatalf("Parse(%q) succeeded", sql)
		}
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	s := mustParse(t, "select a from t where a > 1 order by a limit 5")
	if s.Limit != 5 || len(s.OrderBy) != 1 {
		t.Fatalf("%+v", s)
	}
}

func TestErrorMessagesMentionContext(t *testing.T) {
	_, err := Parse("SELECT a FROM t LIMIT x")
	if err == nil || !strings.Contains(err.Error(), "LIMIT") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestParseAnalyze(t *testing.T) {
	stmt, err := Parse("ANALYZE")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Analyze == nil || len(stmt.Analyze.Tables) != 0 {
		t.Fatalf("bare ANALYZE: %+v", stmt.Analyze)
	}
	stmt, err = Parse("analyze alerts, traffic;")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Analyze == nil || len(stmt.Analyze.Tables) != 2 ||
		stmt.Analyze.Tables[0] != "alerts" || stmt.Analyze.Tables[1] != "traffic" {
		t.Fatalf("table list: %+v", stmt.Analyze)
	}
	if _, err := Parse("ANALYZE alerts traffic"); err == nil {
		t.Fatal("missing comma accepted")
	}
	if _, err := Parse("ANALYZE alerts,"); err == nil {
		t.Fatal("trailing comma accepted")
	}
	if stmt, _ := Parse("SELECT node FROM traffic"); stmt.Analyze != nil {
		t.Fatal("SELECT parsed as ANALYZE")
	}
}

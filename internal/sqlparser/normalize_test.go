package sqlparser

import "testing"

func TestNormalizeCollapsesSpelling(t *testing.T) {
	variants := []string{
		"select SUM(rate) from traffic where node = 'a'",
		"SELECT SUM(rate) FROM traffic WHERE node = 'a';",
		"  SELECT\n\tSUM( rate )\nFROM traffic   WHERE node='a'  -- comment",
	}
	want, err := Normalize(variants[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants[1:] {
		got, err := Normalize(v)
		if err != nil {
			t.Fatalf("%q: %v", v, err)
		}
		if got != want {
			t.Fatalf("normalization diverged:\n%q -> %q\nwant %q", v, got, want)
		}
	}
}

func TestNormalizeDistinguishesDifferentQueries(t *testing.T) {
	a, err := Normalize("SELECT x FROM t WHERE x = 1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Normalize("SELECT x FROM t WHERE x = 2")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatalf("different literals normalized to the same key %q", a)
	}
}

func TestNormalizeStringLiterals(t *testing.T) {
	got, err := Normalize("SELECT x FROM t WHERE s = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	want := "SELECT x FROM t WHERE s = 'it''s'"
	if got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestNormalizeStillParses(t *testing.T) {
	for _, sql := range []string{
		"SELECT DISTINCT a.x, SUM(b.y) AS s FROM ta a JOIN tb b ON a.k = b.k GROUP BY a.x HAVING SUM(b.y) > 3 ORDER BY s DESC LIMIT 5",
		"SELECT rate FROM traffic WINDOW 5 s SLIDE 1 s LIVE 30 s",
		"WITH RECURSIVE r AS (SELECT src, dst FROM links UNION SELECT r.src, links.dst FROM r JOIN links ON r.dst = links.src) SELECT * FROM r",
		"ANALYZE traffic, alerts",
	} {
		norm, err := Normalize(sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		if _, err := Parse(norm); err != nil {
			t.Fatalf("normalized %q does not parse: %v", norm, err)
		}
		// Fixpoint: normalizing the normalization is identity.
		again, err := Normalize(norm)
		if err != nil {
			t.Fatal(err)
		}
		if again != norm {
			t.Fatalf("not a fixpoint: %q -> %q", norm, again)
		}
	}
}

func TestNormalizeRejectsLexErrors(t *testing.T) {
	if _, err := Normalize("SELECT 'unterminated"); err == nil {
		t.Fatal("expected lex error")
	}
}

package spill

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tuple"
)

func row(i int) tuple.Tuple {
	return tuple.Tuple{tuple.Int(int64(i)), tuple.String(fmt.Sprintf("row-%d", i))}
}

func TestFileRoundTrip(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	f, err := m.Create("stage0-part3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Append(0, 1, true, []tuple.Tuple{row(1), row(2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Append(7, 0, false, []tuple.Tuple{row(3)}); err != nil {
		t.Fatal(err)
	}
	r, err := f.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	fr, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Joined || fr.Side != 1 || len(fr.Rows) != 2 || !fr.Rows[0].Equal(row(1)) {
		t.Fatalf("first frame = %+v", fr)
	}
	fr, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if fr.Joined || fr.Side != 0 || fr.Window != 7 || len(fr.Rows) != 1 || !fr.Rows[0].Equal(row(3)) {
		t.Fatalf("second frame = %+v", fr)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestWatermarkPromotesJoined(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	f, err := m.Create("wm")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Append(0, 0, false, []tuple.Tuple{row(1)}); err != nil {
		t.Fatal(err)
	}
	if !f.HasUnjoined() {
		t.Fatal("expected unjoined data before MarkJoined")
	}
	f.MarkJoined()
	if f.HasUnjoined() {
		t.Fatal("expected no unjoined data after MarkJoined")
	}
	if _, err := f.Append(0, 0, false, []tuple.Tuple{row(2)}); err != nil {
		t.Fatal(err)
	}
	r, err := f.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	fr, _ := r.Next()
	if !fr.Joined {
		t.Fatal("frame behind watermark must read as joined")
	}
	fr, _ = r.Next()
	if fr.Joined {
		t.Fatal("frame past watermark must read as unjoined")
	}
}

func TestManagerCloseRemovesEverything(t *testing.T) {
	base := t.TempDir()
	m, err := NewManager(base)
	if err != nil {
		t.Fatal(err)
	}
	f, err := m.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Append(0, 0, false, []tuple.Tuple{row(1)}); err != nil {
		t.Fatal(err)
	}
	dir := m.Dir()
	m.Close()
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("spill dir %s survived Close (err=%v)", dir, err)
	}
	m.Close() // idempotent
}

func TestSweepStaleDirs(t *testing.T) {
	base := t.TempDir()
	// A directory stamped with a certainly-dead PID must be swept; one
	// stamped with our own must survive.
	dead := filepath.Join(base, "pid999999999-dead")
	if err := os.MkdirAll(dead, 0o755); err != nil {
		t.Fatal(err)
	}
	alive := filepath.Join(base, fmt.Sprintf("pid%d-alive", os.Getpid()))
	if err := os.MkdirAll(alive, 0o755); err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(base)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := os.Stat(dead); !os.IsNotExist(err) {
		t.Fatalf("dead-PID dir survived sweep (err=%v)", err)
	}
	if _, err := os.Stat(alive); err != nil {
		t.Fatalf("live-PID dir was swept: %v", err)
	}
}

func TestFileCloseDeletes(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	f, err := m.Create("gone")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Append(0, 0, false, []tuple.Tuple{row(1)}); err != nil {
		t.Fatal(err)
	}
	if m.FileCount() != 1 {
		t.Fatalf("FileCount = %d", m.FileCount())
	}
	f.Close()
	if m.FileCount() != 0 {
		t.Fatalf("FileCount after Close = %d", m.FileCount())
	}
	entries, err := os.ReadDir(m.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("spill dir still holds %d files", len(entries))
	}
}

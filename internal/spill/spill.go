// Package spill provides the temp-file layer under memory-bounded
// operators: append-only frame logs that hybrid-hash joins overflow
// whole partitions into when pier.Config.JoinMemBudget trips, read
// back for the recursive re-join passes after the in-memory pass
// drains. Frames reuse the wire.TupleFrame codec (the same layout all
// tuple-carrying engine traffic ships), buffers are pooled, and the
// directory lifecycle is crash-safe: every node writes under a
// PID-stamped directory and sweeps siblings left by dead processes.
package spill

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"

	"repro/internal/obs"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// DefaultBase is the spill root used when the caller configures none:
// a shared directory under the OS temp dir, inside which each Manager
// owns one PID-stamped subdirectory.
func DefaultBase() string { return filepath.Join(os.TempDir(), "pier-spill") }

// Manager owns one node's spill directory: files are created under
// it, and Close removes the whole tree. Creating a Manager sweeps
// stale sibling directories whose embedded PID no longer runs, so a
// crashed node's spill files cannot accumulate forever.
type Manager struct {
	dir string

	mu       sync.Mutex
	seq      int
	files    map[*File]struct{}
	closed   bool
	onCreate func(label string)

	// Written counts total bytes appended across all files (metrics).
	Written atomic.Int64
	// Created counts spill files ever opened.
	Created obs.Counter
	// Passes counts re-join passes over spilled partitions (fed by the
	// hybrid-hash operator, aggregated node-wide here).
	Passes obs.Counter
}

// SetCreateHook installs a callback invoked whenever a spill file is
// created (the node's spill-started event feed).
func (m *Manager) SetCreateHook(fn func(label string)) {
	m.mu.Lock()
	m.onCreate = fn
	m.mu.Unlock()
}

// RegisterMetrics attaches the manager's counters to a registry under
// spill_* series names.
func (m *Manager) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterCounter("spill_files_created_total", &m.Created)
	reg.RegisterCounter("spill_passes_total", &m.Passes)
	reg.RegisterFunc("spill_written_bytes_total", func() float64 { return float64(m.Written.Load()) })
	reg.RegisterFunc("spill_open_files", func() float64 { return float64(m.FileCount()) })
}

// NewManager creates the node's spill directory under base (DefaultBase
// when empty) and sweeps crash leftovers.
func NewManager(base string) (*Manager, error) {
	if base == "" {
		base = DefaultBase()
	}
	if err := os.MkdirAll(base, 0o755); err != nil {
		return nil, fmt.Errorf("spill: create base %s: %w", base, err)
	}
	sweepStale(base)
	dir, err := os.MkdirTemp(base, fmt.Sprintf("pid%d-", os.Getpid()))
	if err != nil {
		return nil, fmt.Errorf("spill: create dir: %w", err)
	}
	return &Manager{dir: dir, files: make(map[*File]struct{})}, nil
}

// Dir returns the manager's directory.
func (m *Manager) Dir() string { return m.dir }

// sweepStale removes sibling spill directories owned by dead
// processes. Directory names embed the owning PID ("pid1234-xxxx");
// a PID that no longer accepts signal 0 is dead (or was recycled into
// a process we cannot signal — either way its spill files are trash
// to someone).
func sweepStale(base string) {
	entries, err := os.ReadDir(base)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		pid, ok := dirPID(e.Name())
		if !ok || pid == os.Getpid() || processAlive(pid) {
			continue
		}
		_ = os.RemoveAll(filepath.Join(base, e.Name()))
	}
}

// dirPID parses the owning PID out of a spill directory name.
func dirPID(name string) (int, bool) {
	if !strings.HasPrefix(name, "pid") {
		return 0, false
	}
	rest := name[3:]
	i := strings.IndexByte(rest, '-')
	if i <= 0 {
		return 0, false
	}
	pid, err := strconv.Atoi(rest[:i])
	if err != nil || pid <= 0 {
		return 0, false
	}
	return pid, true
}

// processAlive reports whether pid can be signalled (signal 0 probes
// existence without delivering anything).
func processAlive(pid int) bool {
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	return p.Signal(syscall.Signal(0)) == nil
}

// Create opens a fresh spill file. The label lands in the filename
// for debuggability only.
func (m *Manager) Create(label string) (*File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("spill: manager closed")
	}
	m.seq++
	name := filepath.Join(m.dir, fmt.Sprintf("%06d-%s.spill", m.seq, sanitize(label)))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, fmt.Errorf("spill: create %s: %w", name, err)
	}
	sf := &File{mgr: m, path: name, f: f, w: bufio.NewWriterSize(f, 64<<10)}
	m.files[sf] = struct{}{}
	m.Created.Add(1)
	if m.onCreate != nil {
		m.onCreate(label)
	}
	return sf, nil
}

// sanitize keeps labels filesystem-safe.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}

// Close removes every live file and the directory. Idempotent.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	files := make([]*File, 0, len(m.files))
	for f := range m.files {
		files = append(files, f)
	}
	m.files = nil
	m.mu.Unlock()
	for _, f := range files {
		f.close(false)
	}
	_ = os.RemoveAll(m.dir)
}

// forget drops a closed file from the registry.
func (m *Manager) forget(f *File) {
	m.mu.Lock()
	if m.files != nil {
		delete(m.files, f)
	}
	m.mu.Unlock()
}

// FileCount reports how many spill files are currently live (tests).
func (m *Manager) FileCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.files)
}

// ---------------------------------------------------------------------------
// File

// File is an append-only log of tuple frames belonging to one spilled
// partition. Each frame reuses the wire.TupleFrame codec with the
// Side byte carrying the joined flag: joined frames hold tuples whose
// join output was already emitted before the partition spilled, so a
// re-join pass inserts them with emission suppressed. After a pass
// the caller advances the joined watermark instead of rewriting
// frames — every frame before the watermark counts as joined.
type File struct {
	mgr  *Manager
	path string

	mu            sync.Mutex
	f             *os.File
	w             *bufio.Writer
	size          int64 // logical end (bytes framed so far)
	joinedThrough int64 // frames starting before this offset are joined
	closed        bool
}

// frameBufPool recycles frame encode/decode scratch buffers.
var frameBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 16<<10); return &b },
}

// Append writes one frame of rows for (window, side) with the given
// joined flag, returning the bytes written.
func (f *File) Append(window uint64, side uint8, joined bool, rows []tuple.Tuple) (int64, error) {
	if len(rows) == 0 {
		return 0, nil
	}
	fr := wire.TupleFrame{Window: window, Stage: side}
	if joined {
		fr.Side = 1
	}
	fr.Records = make([][]byte, len(rows))
	for i, t := range rows {
		fr.Records[i] = t.Bytes()
	}
	w := wire.GetWriter()
	fr.Encode(w)
	body := w.Bytes()

	var hdr [binary.MaxVarintLen64]byte
	hn := binary.PutUvarint(hdr[:], uint64(len(body)))

	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		wire.PutWriter(w)
		return 0, fmt.Errorf("spill: %s closed", f.path)
	}
	if _, err := f.w.Write(hdr[:hn]); err != nil {
		wire.PutWriter(w)
		return 0, err
	}
	if _, err := f.w.Write(body); err != nil {
		wire.PutWriter(w)
		return 0, err
	}
	n := int64(hn + len(body))
	f.size += n
	wire.PutWriter(w)
	f.mgr.Written.Add(n)
	return n, nil
}

// Size returns the logical size (bytes appended so far).
func (f *File) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

// MarkJoined advances the joined watermark to the current end: every
// frame written so far becomes joined, so a later pass re-inserts its
// tuples without re-emitting their pairs.
func (f *File) MarkJoined() {
	f.mu.Lock()
	f.joinedThrough = f.size
	f.mu.Unlock()
}

// HasUnjoined reports whether any frame past the watermark exists —
// i.e. a re-join pass over this file could emit new output.
func (f *File) HasUnjoined() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size > f.joinedThrough
}

// Close flushes, closes, and deletes the file. Idempotent.
func (f *File) Close() { f.close(true) }

func (f *File) close(forget bool) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	_ = f.w.Flush()
	_ = f.f.Close()
	_ = os.Remove(f.path)
	f.mu.Unlock()
	if forget {
		f.mgr.forget(f)
	}
}

// NewReader flushes pending writes and opens a sequential reader over
// the frames written so far. The caller must not run reads and
// appends concurrently for the same pass (the join operator is single
// threaded per stage, so it never does).
func (f *File) NewReader() (*Reader, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, fmt.Errorf("spill: %s closed", f.path)
	}
	if err := f.w.Flush(); err != nil {
		f.mu.Unlock()
		return nil, err
	}
	end, joinedThrough := f.size, f.joinedThrough
	f.mu.Unlock()
	rf, err := os.Open(f.path)
	if err != nil {
		return nil, err
	}
	buf := frameBufPool.Get().(*[]byte)
	return &Reader{
		f:             rf,
		br:            bufio.NewReaderSize(rf, 64<<10),
		end:           end,
		joinedThrough: joinedThrough,
		buf:           buf,
	}, nil
}

// Frame is one decoded spill frame.
type Frame struct {
	Window uint64
	Side   uint8
	// Joined: the frame's tuples already had their join output emitted
	// (spilled resident state, or any frame behind the watermark).
	Joined bool
	Rows   []tuple.Tuple
}

// Reader iterates a file's frames in append order.
type Reader struct {
	f             *os.File
	br            *bufio.Reader
	off           int64
	end           int64
	joinedThrough int64
	buf           *[]byte
	closed        bool
}

// Next returns the next frame, or io.EOF past the end snapshot.
func (r *Reader) Next() (Frame, error) {
	if r.off >= r.end {
		return Frame{}, io.EOF
	}
	start := r.off
	n, err := binary.ReadUvarint(r.br)
	if err != nil {
		return Frame{}, fmt.Errorf("spill: frame header at %d: %w", r.off, err)
	}
	hn := uvarintLen(n)
	if int64(n) > r.end-r.off-int64(hn) {
		return Frame{}, fmt.Errorf("spill: frame of %d bytes overruns file", n)
	}
	body := *r.buf
	if cap(body) < int(n) {
		body = make([]byte, n)
		*r.buf = body
	}
	body = body[:n]
	if _, err := io.ReadFull(r.br, body); err != nil {
		return Frame{}, err
	}
	r.off += int64(hn) + int64(n)
	fr, err := wire.TupleFrameFromBytes(body)
	if err != nil {
		return Frame{}, err
	}
	out := Frame{
		Window: fr.Window,
		Side:   fr.Stage,
		Joined: fr.Side == 1 || start < r.joinedThrough,
	}
	out.Rows = make([]tuple.Tuple, 0, len(fr.Records))
	for _, rec := range fr.Records {
		t, err := tuple.FromBytes(rec)
		if err != nil {
			return Frame{}, err
		}
		out.Rows = append(out.Rows, t)
	}
	return out, nil
}

// uvarintLen returns the encoded length of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Close releases the reader.
func (r *Reader) Close() {
	if r.closed {
		return
	}
	r.closed = true
	_ = r.f.Close()
	if r.buf != nil && cap(*r.buf) <= 1<<20 {
		frameBufPool.Put(r.buf)
	}
}

// Package monitor implements the PlanetLab-style monitoring workloads
// of the demonstration: per-node outbound-traffic sensors (Figure 1's
// data source) and Snort-style intrusion-detection alert feeds
// (Table 1's data source). The paper ran real Snort and bandwidth
// counters on ~300 PlanetLab machines; this package synthesizes
// statistically similar feeds so the identical queries run over the
// simulated testbed — the substitution recorded in DESIGN.md.
package monitor

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/pier"
	"repro/internal/tuple"
)

// TrafficSchema is the per-node outbound data-rate table: each sample
// is (node, sample, rate) where sample makes consecutive readings
// distinct soft-state items.
var TrafficSchema = tuple.MustSchema("traffic", []tuple.Column{
	{Name: "node", Type: tuple.TString},
	{Name: "sample", Type: tuple.TInt},
	{Name: "rate", Type: tuple.TFloat},
}, "node", "sample")

// AlertSchema is the per-node Snort alert count table: (node, rule,
// descr, hits).
var AlertSchema = tuple.MustSchema("alerts", []tuple.Column{
	{Name: "node", Type: tuple.TString},
	{Name: "rule", Type: tuple.TInt},
	{Name: "descr", Type: tuple.TString},
	{Name: "hits", Type: tuple.TInt},
}, "node", "rule")

// Rule is one intrusion-detection rule with its network-wide hit
// count as published in the paper's Table 1.
type Rule struct {
	ID    int64
	Descr string
	Hits  int64
}

// Table1Rules reproduces the paper's Table 1: the network-wide top
// ten intrusion detection rules reported by Snort on PlanetLab.
var Table1Rules = []Rule{
	{1322, "BAD-TRAFFIC bad frag bits", 465770},
	{2189, "BAD TRAFFIC IP Proto 103 (PIM)", 123558},
	{1923, "RPC portmap proxy attempt UDP", 31491},
	{1444, "TFTP Get", 21944},
	{1917, "SCAN UPnP service discover attempt", 17565},
	{1384, "MISC UPnP malformed advertisement", 14052},
	{1321, "BAD-TRAFFIC 0 ttl", 10115},
	{1852, "WEB-MISC robots.txt access", 10094},
	{1411, "SNMP public access udp", 7778},
	{895, "WEB-CGI redirect access", 7277},
}

// BackgroundRules are lower-volume rules below the paper's top ten,
// present so the top-10 query actually has something to exclude.
var BackgroundRules = []Rule{
	{1000, "ICMP PING NMAP", 5210},
	{1001, "SCAN SSH Version map attempt", 4188},
	{1002, "WEB-IIS cmd.exe access", 3021},
	{1003, "P2P GNUTella client request", 2455},
	{1004, "CHAT IRC nick change", 1201},
	{1005, "FTP anonymous login attempt", 960},
	{1006, "SCAN Proxy Port 8080 attempt", 544},
	{1007, "DNS zone transfer TCP", 310},
}

// SeedAlerts distributes every rule's network-wide hit count across
// the given nodes' local partitions: each node receives a share drawn
// from a symmetric multinomial (deterministic given seed), so the
// per-node tables differ but sum to the published totals exactly.
func SeedAlerts(nodes []*pier.Node, rules []Rule, ttl time.Duration, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	for _, nd := range nodes {
		if err := nd.DefineTable(AlertSchema, ttl); err != nil {
			return err
		}
	}
	n := len(nodes)
	for _, rule := range rules {
		shares := multinomialShares(rng, rule.Hits, n)
		for i, nd := range nodes {
			if shares[i] == 0 {
				continue
			}
			err := nd.PublishLocal("alerts", tuple.Tuple{
				tuple.String(nd.Addr()),
				tuple.Int(rule.ID),
				tuple.String(rule.Descr),
				tuple.Int(shares[i]),
			})
			if err != nil {
				return fmt.Errorf("monitor: seeding alerts on %s: %w", nd.Addr(), err)
			}
		}
	}
	return nil
}

// multinomialShares splits total into n non-negative shares summing
// exactly to total, approximately uniform.
func multinomialShares(rng *rand.Rand, total int64, n int) []int64 {
	shares := make([]int64, n)
	if n == 0 {
		return shares
	}
	base := total / int64(n)
	for i := range shares {
		shares[i] = base
	}
	rem := total - base*int64(n)
	for i := int64(0); i < rem; i++ {
		shares[rng.Intn(n)]++
	}
	// Perturb ±25% pairwise so shares are not all equal, preserving
	// the exact sum.
	for i := 0; i+1 < n; i += 2 {
		if shares[i] == 0 {
			continue
		}
		d := int64(float64(shares[i]) * 0.25 * rng.Float64())
		shares[i] -= d
		shares[i+1] += d
	}
	return shares
}

// SensorConfig tunes a traffic sensor.
type SensorConfig struct {
	// Period between samples. Default 100ms (simulation scale; the
	// demo sampled every few seconds).
	Period time.Duration
	// BaseRate is the node's mean outbound rate (arbitrary units).
	// Default 10.
	BaseRate float64
	// DiurnalAmplitude modulates the rate with a slow sine (the
	// day/night swing visible in Figure 1). Default 0.3 (fraction
	// of BaseRate).
	DiurnalAmplitude float64
	// DiurnalPeriod is the sine's period. Default 10s (a compressed
	// "day").
	DiurnalPeriod time.Duration
	// Noise is the multiplicative jitter fraction. Default 0.1.
	Noise float64
	// TTL is each sample's soft-state lifetime; it should exceed the
	// query window. Default 2s.
	TTL time.Duration
	// Seed makes the sensor reproducible.
	Seed int64
}

func (c SensorConfig) withDefaults() SensorConfig {
	if c.Period == 0 {
		c.Period = 100 * time.Millisecond
	}
	if c.BaseRate == 0 {
		c.BaseRate = 10
	}
	if c.DiurnalAmplitude == 0 {
		c.DiurnalAmplitude = 0.3
	}
	if c.DiurnalPeriod == 0 {
		c.DiurnalPeriod = 10 * time.Second
	}
	if c.Noise == 0 {
		c.Noise = 0.1
	}
	if c.TTL == 0 {
		c.TTL = 2 * time.Second
	}
	return c
}

// Sensor periodically publishes outbound-rate samples into the
// node's local traffic partition.
type Sensor struct {
	node   *pier.Node
	cfg    SensorConfig
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu        sync.Mutex
	paused    bool
	published int64
}

// NewSensor attaches a sensor to a node (defining the traffic table
// if needed) and starts sampling.
func NewSensor(node *pier.Node, cfg SensorConfig) (*Sensor, error) {
	cfg = cfg.withDefaults()
	if err := node.DefineTable(TrafficSchema, cfg.TTL); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Sensor{node: node, cfg: cfg, cancel: cancel}
	s.wg.Add(1)
	go s.run(ctx)
	return s, nil
}

// Pause stops publishing without tearing the sensor down (simulating
// a node that stops responding at the application level).
func (s *Sensor) Pause(p bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.paused = p
}

// Published returns how many samples the sensor has emitted.
func (s *Sensor) Published() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.published
}

// Rate returns the model rate at time t (exported for tests and for
// computing expected Figure 1 series).
func (s *Sensor) Rate(t time.Time) float64 {
	c := s.cfg
	phase := 2 * math.Pi * float64(t.UnixNano()) / float64(c.DiurnalPeriod)
	return c.BaseRate * (1 + c.DiurnalAmplitude*math.Sin(phase))
}

// Stop halts the sensor.
func (s *Sensor) Stop() {
	s.cancel()
	s.wg.Wait()
}

func (s *Sensor) run(ctx context.Context) {
	defer s.wg.Done()
	rng := rand.New(rand.NewSource(s.cfg.Seed + 1))
	t := time.NewTicker(s.cfg.Period)
	defer t.Stop()
	seq := int64(0)
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			s.mu.Lock()
			paused := s.paused
			s.mu.Unlock()
			if paused {
				continue
			}
			seq++
			rate := s.Rate(now) * (1 + s.cfg.Noise*(2*rng.Float64()-1))
			err := s.node.PublishLocal("traffic", tuple.Tuple{
				tuple.String(s.node.Addr()),
				tuple.Int(seq),
				tuple.Float(rate),
			})
			if err == nil {
				s.mu.Lock()
				s.published++
				s.mu.Unlock()
			}
		}
	}
}

// Table1SQL is the demo's Table 1 query.
const Table1SQL = `SELECT rule, descr, SUM(hits) AS hits
FROM alerts GROUP BY rule, descr ORDER BY hits DESC LIMIT 10`

// Figure1SQL is the demo's Figure 1 continuous query (window and
// slide are placeholders substituted by the harness).
const Figure1SQL = `SELECT SUM(rate) FROM traffic WINDOW %d ms SLIDE %d ms`

// Figure1Query renders the continuous sum with the given window and
// slide.
func Figure1Query(window, slide time.Duration) string {
	return fmt.Sprintf(Figure1SQL, window.Milliseconds(), slide.Milliseconds())
}

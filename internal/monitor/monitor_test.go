package monitor

import (
	"context"
	"testing"
	"time"

	"repro/internal/piertest"
)

func TestTable1RulesMatchPaper(t *testing.T) {
	if len(Table1Rules) != 10 {
		t.Fatalf("Table 1 has %d rules", len(Table1Rules))
	}
	// The published ordering is strictly decreasing by hits.
	for i := 1; i < len(Table1Rules); i++ {
		if Table1Rules[i].Hits >= Table1Rules[i-1].Hits {
			t.Fatalf("rules not decreasing at %d", i)
		}
	}
	if Table1Rules[0].ID != 1322 || Table1Rules[0].Hits != 465770 {
		t.Fatalf("top rule %+v", Table1Rules[0])
	}
	if Table1Rules[9].ID != 895 || Table1Rules[9].Hits != 7277 {
		t.Fatalf("bottom rule %+v", Table1Rules[9])
	}
}

func TestMultinomialSharesSumExactly(t *testing.T) {
	c, err := piertest.New(piertest.Options{N: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rules := append(append([]Rule(nil), Table1Rules...), BackgroundRules...)
	if err := SeedAlerts(c.Nodes, rules, time.Minute, 7); err != nil {
		t.Fatal(err)
	}
	// Network-wide sums must equal the published counts exactly.
	res, err := c.Nodes[0].Query(context.Background(),
		"SELECT rule, SUM(hits) AS hits FROM alerts GROUP BY rule")
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]int64{}
	for _, r := range res.Rows {
		got[r[0].I] = r[1].I
	}
	for _, rule := range rules {
		if got[rule.ID] != rule.Hits {
			t.Fatalf("rule %d: got %d hits, want %d", rule.ID, got[rule.ID], rule.Hits)
		}
	}
}

func TestTable1QueryReproducesOrdering(t *testing.T) {
	c, err := piertest.New(piertest.Options{N: 6, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rules := append(append([]Rule(nil), Table1Rules...), BackgroundRules...)
	if err := SeedAlerts(c.Nodes, rules, time.Minute, 3); err != nil {
		t.Fatal(err)
	}
	res, err := c.Nodes[2].Query(context.Background(), Table1SQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("top-10 returned %d rows", len(res.Rows))
	}
	for i, want := range Table1Rules {
		row := res.Rows[i]
		if row[0].I != want.ID || row[1].S != want.Descr || row[2].I != want.Hits {
			t.Fatalf("row %d = %v, want %+v", i, row, want)
		}
	}
}

func TestSensorPublishesSamples(t *testing.T) {
	c, err := piertest.New(piertest.Options{N: 1, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := NewSensor(c.Nodes[0], SensorConfig{Period: 20 * time.Millisecond, TTL: time.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Published() >= 5 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if s.Published() < 5 {
		t.Fatalf("sensor published %d samples", s.Published())
	}
	if got := c.Nodes[0].Store().Count("table:traffic"); got < 5 {
		t.Fatalf("store has %d samples", got)
	}
}

func TestSensorPause(t *testing.T) {
	c, err := piertest.New(piertest.Options{N: 1, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := NewSensor(c.Nodes[0], SensorConfig{Period: 10 * time.Millisecond, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	time.Sleep(100 * time.Millisecond)
	s.Pause(true)
	n1 := s.Published()
	time.Sleep(100 * time.Millisecond)
	if s.Published() != n1 {
		t.Fatal("paused sensor kept publishing")
	}
	s.Pause(false)
	time.Sleep(100 * time.Millisecond)
	if s.Published() == n1 {
		t.Fatal("resumed sensor did not publish")
	}
}

func TestSensorRateModel(t *testing.T) {
	c, err := piertest.New(piertest.Options{N: 1, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := NewSensor(c.Nodes[0], SensorConfig{BaseRate: 100, DiurnalAmplitude: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	// The diurnal model stays within [base*(1-amp), base*(1+amp)].
	for i := 0; i < 50; i++ {
		r := s.Rate(time.Unix(int64(i), 0))
		if r < 49 || r > 151 {
			t.Fatalf("rate %v out of model bounds", r)
		}
	}
}

func TestFigure1QueryRendering(t *testing.T) {
	q := Figure1Query(5*time.Second, time.Second)
	if q != "SELECT SUM(rate) FROM traffic WINDOW 5000 ms SLIDE 1000 ms" {
		t.Fatalf("rendered %q", q)
	}
}

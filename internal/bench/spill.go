package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/piertest"
	"repro/internal/plan"
	"repro/internal/tuple"
)

// ---------------------------------------------------------------------------
// Memory-bounded hybrid-hash joins: the budget sweep
//
// The experiment runs one join whose build state is several times the
// smallest budget under a sweep of per-stage memory budgets, from
// unlimited down to a fraction of the build size. It reports wall
// time, the worst per-operator resident high-water mark, spilled
// bytes, and recursive pass counts per budget — the graceful-
// degradation curve: results stay byte-identical to the centralized
// baseline at every point while resident memory tracks the budget
// instead of the data.

// SpillPoint is one budget's measurement.
type SpillPoint struct {
	// Budget is the per-stage build-state budget in bytes (0 =
	// unlimited).
	Budget int64
	// Wall is the query's wall time at the coordinator.
	Wall time.Duration
	// PeakMem is the worst single operator's resident high-water mark
	// network-wide; Spilled and Passes sum the spill counters.
	PeakMem uint64
	Spilled uint64
	Passes  uint64
	// Rows is the result cardinality; RowsMatch compares against the
	// centralized baseline executor byte for byte.
	Rows      int
	RowsMatch bool
}

// SpillOutcome is the whole sweep.
type SpillOutcome struct {
	// BuildBytes approximates the unbounded build state: the unlimited
	// run's peak resident bytes (worst node).
	BuildBytes uint64
	Points     []SpillPoint
}

// SpillSweep runs the budget sweep on an n-node simulated network.
// ordersPerNode sizes the local fact table (padded rows, so a few
// hundred per node already dwarf a 64KB budget).
func SpillSweep(n, ordersPerNode int, seed int64) (*SpillOutcome, error) {
	if n == 0 {
		n = 4
	}
	if ordersPerNode == 0 {
		ordersPerNode = 600
	}
	const nUsers = 40
	usersSchema := tuple.MustSchema("users", []tuple.Column{
		{Name: "uid", Type: tuple.TInt},
		{Name: "name", Type: tuple.TString},
	}, "uid")
	ordersSchema := tuple.MustSchema("orders", []tuple.Column{
		{Name: "node", Type: tuple.TString},
		{Name: "oid", Type: tuple.TInt},
		{Name: "uid", Type: tuple.TInt},
		{Name: "pad", Type: tuple.TString},
	}, "node", "oid")
	const sql = "SELECT o.oid, u.name FROM orders o JOIN users u ON o.uid = u.uid"
	budgets := []int64{0, 1 << 20, 256 << 10, 64 << 10}

	out := &SpillOutcome{}
	var refDigest string
	pad := strings.Repeat("x", 64)
	for _, budget := range budgets {
		cfg := piertest.FastConfig()
		cfg.JoinMemBudget = budget
		cluster, err := piertest.New(piertest.Options{N: n, Seed: seed, NodeCfg: &cfg})
		if err != nil {
			return nil, err
		}
		var bases []*baseline.Centralized
		for _, nd := range cluster.Nodes {
			bases = append(bases, baseline.NewCentralized(nd))
			for _, s := range []*tuple.Schema{usersSchema, ordersSchema} {
				if err := nd.DefineTable(s, 5*time.Minute); err != nil {
					cluster.Close()
					return nil, err
				}
			}
		}
		for u := 0; u < nUsers; u++ {
			if err := cluster.Nodes[u%n].Publish("users", tuple.Tuple{
				tuple.Int(int64(u)), tuple.String(fmt.Sprintf("user-%d", u)),
			}); err != nil {
				cluster.Close()
				return nil, err
			}
		}
		for i, nd := range cluster.Nodes {
			for j := 0; j < ordersPerNode; j++ {
				oid := i*ordersPerNode + j
				if err := nd.PublishLocal("orders", tuple.Tuple{
					tuple.String(nd.Addr()), tuple.Int(int64(oid)),
					tuple.Int(int64(oid % nUsers)), tuple.String(pad),
				}); err != nil {
					cluster.Close()
					return nil, err
				}
			}
		}
		if err := waitForCount(cluster, "table:users", nUsers, 20*time.Second); err != nil {
			cluster.Close()
			return nil, err
		}
		if refDigest == "" {
			ref, err := bases[0].QuerySQL(context.Background(), sql, 300*time.Millisecond)
			if err != nil {
				cluster.Close()
				return nil, fmt.Errorf("bench: baseline executor: %w", err)
			}
			refDigest = rowsDigest(ref.Rows)
		}
		sym := plan.SymmetricHash
		t0 := time.Now()
		res, err := cluster.Nodes[0].QueryWithOptions(context.Background(), sql,
			plan.Options{Strategy: &sym, Analyze: true})
		if err != nil {
			cluster.Close()
			return nil, fmt.Errorf("bench: budget %d: %w", budget, err)
		}
		pt := SpillPoint{
			Budget:    budget,
			Wall:      time.Since(t0),
			Rows:      len(res.Rows),
			RowsMatch: rowsDigest(res.Rows) == refDigest,
		}
		for _, op := range res.Analysis.Ops {
			if op.PeakMem > pt.PeakMem {
				pt.PeakMem = op.PeakMem
			}
			pt.Spilled += op.Spilled
			pt.Passes += op.Passes
		}
		if budget == 0 {
			out.BuildBytes = pt.PeakMem
		}
		out.Points = append(out.Points, pt)
		cluster.Close()
	}
	return out, nil
}

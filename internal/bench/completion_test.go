package bench

import (
	"testing"

	"repro/internal/pier"
)

// TestCompletionSmoke pins the experiment's happy path: on an idle
// cluster every EOS-mode query must complete with reason "eos" (and
// the quiet-timer baseline with "quiet-timeout"), with EOS strictly
// faster at the median.
func TestCompletionSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up a cluster")
	}
	out, err := Completion(CompletionConfig{Sizes: []int{8}, Queries: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Sizes) != 1 {
		t.Fatalf("sizes = %d, want 1", len(out.Sizes))
	}
	sz := out.Sizes[0]
	if got := sz.EOS.Reasons[pier.ReasonEOS]; got != sz.EOS.Queries {
		t.Fatalf("EOS mode: %d/%d queries completed with reason %q: %v",
			got, sz.EOS.Queries, pier.ReasonEOS, sz.EOS.Reasons)
	}
	if got := sz.Timer.Reasons[pier.ReasonQuietTimeout]; got != sz.Timer.Queries {
		t.Fatalf("timer mode: %d/%d queries completed with reason %q: %v",
			got, sz.Timer.Queries, pier.ReasonQuietTimeout, sz.Timer.Reasons)
	}
	if sz.EOS.P50 >= sz.Timer.P50 {
		t.Fatalf("EOS p50 %v not faster than quiet-timer p50 %v", sz.EOS.P50, sz.Timer.P50)
	}
}

// Package bench implements the experiment harness that regenerates
// the paper's evaluation artifacts (Figure 1 and Table 1) and the
// supporting shape results DESIGN.md indexes (routing scalability,
// in-network aggregation vs. centralized collection, join-strategy
// costs, churn survival, search vs. flooding, recursive closure, and
// the Chord/Kademlia ablation). cmd/pierbench prints these as tables;
// bench_test.go wraps them as testing.B benchmarks.
package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/can"
	"repro/internal/catalog"
	"repro/internal/chord"
	"repro/internal/id"
	"repro/internal/kademlia"
	"repro/internal/monitor"
	"repro/internal/piertest"
	"repro/internal/plan"
	"repro/internal/search"
	"repro/internal/simnet"
	"repro/internal/topology"
	"repro/internal/tuple"
)

// ---------------------------------------------------------------------------
// Figure 1

// Figure1Point is one window of the continuous sum.
type Figure1Point struct {
	T          time.Duration // time since query start
	Sum        float64       // SUM(rate) over responding nodes
	Responding int           // nodes with live sensors at window close
	// Expected is the sensor model's predicted SUM(rate) for this
	// window had every node responded. Sum/Expected is the
	// diurnal-corrected response fraction: the sensors carry a
	// wall-clock-phased sine component (±DiurnalAmplitude), so raw
	// sums from different windows are not comparable — the shape
	// checks compare fractions instead.
	Expected float64
}

// Fraction is the diurnal-corrected response fraction (0 when the
// model expectation is unavailable).
func (p Figure1Point) Fraction() float64 {
	if p.Expected <= 0 {
		return 0
	}
	return p.Sum / p.Expected
}

// Figure1Config parameterizes the Figure 1 run.
type Figure1Config struct {
	N         int           // nodes (paper: ~300 PlanetLab machines)
	Window    time.Duration // aggregation window
	Slide     time.Duration // window slide
	Run       time.Duration // total experiment duration
	FailAt    time.Duration // when the failure group goes down
	RecoverAt time.Duration // when it comes back (0 = never)
	FailCount int           // how many nodes fail
	Seed      int64
}

// Figure1 regenerates the demo's continuous SUM of per-node outbound
// data rates while part of the network fails and recovers — the
// series whose shape (steady sum, drop at failure, recovery ramp)
// matches the paper's Figure 1.
func Figure1(cfg Figure1Config) ([]Figure1Point, error) {
	if cfg.N == 0 {
		cfg.N = 24
	}
	if cfg.Window == 0 {
		cfg.Window = time.Second
	}
	if cfg.Slide == 0 {
		cfg.Slide = 500 * time.Millisecond
	}
	if cfg.Run == 0 {
		cfg.Run = 10 * time.Second
	}
	cluster, err := piertest.New(piertest.Options{N: cfg.N, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	sensorPeriod := 100 * time.Millisecond
	var model *monitor.Sensor // rate model (shared by every sensor)
	for i, nd := range cluster.Nodes {
		s, err := monitor.NewSensor(nd, monitor.SensorConfig{
			Period:   sensorPeriod,
			BaseRate: 10,
			TTL:      2 * cfg.Window,
			Seed:     int64(i),
		})
		if err != nil {
			return nil, err
		}
		defer s.Stop()
		if model == nil {
			model = s
		}
	}
	// expectedSum predicts the full-network SUM(rate) of the window
	// closing at closeAt: one model-rate sample per sensor period per
	// node (sample noise is mean-zero).
	expectedSum := func(closeAt time.Time) float64 {
		perNode := 0.0
		for k := 1; k <= int(cfg.Window/sensorPeriod); k++ {
			perNode += model.Rate(closeAt.Add(-cfg.Window + time.Duration(k)*sensorPeriod))
		}
		return perNode * float64(cfg.N)
	}
	cont, err := cluster.Nodes[0].QueryContinuous(context.Background(),
		monitor.Figure1Query(cfg.Window, cfg.Slide))
	if err != nil {
		return nil, err
	}
	defer cont.Stop()

	start := time.Now()
	down := false
	recovered := false
	var series []Figure1Point
	for time.Since(start) < cfg.Run {
		if cfg.FailCount > 0 && !down && cfg.FailAt > 0 && time.Since(start) >= cfg.FailAt {
			down = true
			for i := 1; i <= cfg.FailCount && i < cfg.N; i++ {
				cluster.Net.SetDown(cluster.Nodes[i].Addr(), true)
			}
		}
		if down && !recovered && cfg.RecoverAt > 0 && time.Since(start) >= cfg.RecoverAt {
			recovered = true
			for i := 1; i <= cfg.FailCount && i < cfg.N; i++ {
				cluster.Net.SetDown(cluster.Nodes[i].Addr(), false)
			}
		}
		select {
		case wr, ok := <-cont.Results():
			if !ok {
				return series, nil
			}
			if len(wr.Rows) != 1 || wr.Rows[0][0].IsNull() {
				continue
			}
			responding := cfg.N
			if down && !recovered {
				responding -= cfg.FailCount
			}
			series = append(series, Figure1Point{
				T:          time.Since(start),
				Sum:        wr.Rows[0][0].F,
				Responding: responding,
				Expected:   expectedSum(wr.Time),
			})
		case <-time.After(cfg.Run):
			return series, fmt.Errorf("bench: figure1 produced no windows")
		}
	}
	return series, nil
}

// Figure1Dip summarizes the failure-dip shape of a Figure 1 series:
// the median diurnal-corrected response fraction over the pre-failure
// plateau window and over the post-failure trough window (by receipt
// time since query start). ok is false when either bucket is empty —
// the shape cannot be judged (e.g. the aggregation collector itself
// was in the failure group and no trough windows arrived).
func Figure1Dip(series []Figure1Point, preLo, preHi, troughLo, troughHi time.Duration) (pre, trough float64, ok bool) {
	var preF, troughF []float64
	for _, p := range series {
		f := p.Fraction()
		if f <= 0 {
			continue
		}
		switch {
		case p.T > preLo && p.T < preHi:
			preF = append(preF, f)
		case p.T > troughLo && p.T < troughHi:
			troughF = append(troughF, f)
		}
	}
	if len(preF) == 0 || len(troughF) == 0 {
		return 0, 0, false
	}
	return median(preF), median(troughF), true
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// ---------------------------------------------------------------------------
// Table 1

// Table1Row is one reported rule.
type Table1Row struct {
	Rule  int64
	Descr string
	Hits  int64
}

// Table1Result carries the reproduced table plus run metadata.
type Table1Result struct {
	Rows     []Table1Row
	Duration time.Duration
	Msgs     uint64 // network messages for the query (post-seeding)
}

// Table1 seeds every node's Snort table with shares of the paper's
// published counts and runs the demo's top-ten query.
func Table1(n int, seed int64) (*Table1Result, error) {
	if n == 0 {
		n = 24
	}
	cluster, err := piertest.New(piertest.Options{N: n, Seed: seed})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	rules := append(append([]monitor.Rule(nil), monitor.Table1Rules...), monitor.BackgroundRules...)
	if err := monitor.SeedAlerts(cluster.Nodes, rules, time.Minute, seed+1); err != nil {
		return nil, err
	}
	cluster.Net.ResetStats()
	res, err := cluster.Nodes[0].Query(context.Background(), monitor.Table1SQL)
	if err != nil {
		return nil, err
	}
	out := &Table1Result{Duration: res.Duration, Msgs: cluster.Net.Stats().Sent}
	for _, r := range res.Rows {
		out.Rows = append(out.Rows, Table1Row{Rule: r[0].I, Descr: r[1].S, Hits: r[2].I})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// S1: routing scalability

// HopsPoint is one network size's lookup cost.
type HopsPoint struct {
	N        int
	MeanHops float64
}

// ScalingHops measures mean Chord lookup hops across network sizes —
// the O(log n) routing behaviour PIER's scalability claim rests on.
func ScalingHops(sizes []int, lookups int, seed int64) ([]HopsPoint, error) {
	if len(sizes) == 0 {
		sizes = []int{16, 32, 64, 128}
	}
	if lookups == 0 {
		lookups = 50
	}
	var out []HopsPoint
	for _, n := range sizes {
		cluster, err := piertest.New(piertest.Options{N: n, Seed: seed})
		if err != nil {
			return nil, err
		}
		// Let fingers converge enough for log-n routing.
		time.Sleep(time.Duration(n) * 12 * time.Millisecond)
		total := 0
		for i := 0; i < lookups; i++ {
			key := id.HashString(fmt.Sprintf("probe-%d-%d", n, i))
			src := cluster.Nodes[i%n]
			_, hops, err := src.Router().Lookup(context.Background(), key)
			if err != nil {
				continue
			}
			total += hops
		}
		cluster.Close()
		out = append(out, HopsPoint{N: n, MeanHops: float64(total) / float64(lookups)})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// S2: in-network aggregation vs centralized collection

// AggResult is one strategy's cost for the same grand aggregate.
type AggResult struct {
	Mode        string
	Msgs        uint64 // total network messages
	Bytes       uint64 // total network bytes
	RootInMsgs  uint64 // messages arriving at the collection point
	RootInBytes uint64 // bytes arriving at the collection point
	Value       float64
}

// AggregationComparison computes SUM(v) over n nodes three ways:
// in-network aggregation with relay combining, without combining, and
// centralized ship-all-tuples — the bandwidth argument at the heart
// of the paper.
func AggregationComparison(n, rowsPerNode int, seed int64) ([]AggResult, error) {
	if n == 0 {
		n = 24
	}
	if rowsPerNode == 0 {
		rowsPerNode = 20
	}
	schema := tuple.MustSchema("v", []tuple.Column{
		{Name: "node", Type: tuple.TString},
		{Name: "i", Type: tuple.TInt},
		{Name: "val", Type: tuple.TFloat},
	}, "node", "i")
	want := float64(n*rowsPerNode) * 2.5

	run := func(mode string, disableCombiner bool, centralized bool) (AggResult, error) {
		cfg := piertest.FastConfig()
		cfg.DisableCombiner = disableCombiner
		cluster, err := piertest.New(piertest.Options{N: n, Seed: seed, NodeCfg: &cfg})
		if err != nil {
			return AggResult{}, err
		}
		defer cluster.Close()
		var bases []*baseline.Centralized
		for _, nd := range cluster.Nodes {
			bases = append(bases, baseline.NewCentralized(nd))
			if err := nd.DefineTable(schema, time.Minute); err != nil {
				return AggResult{}, err
			}
			for i := 0; i < rowsPerNode; i++ {
				nd.PublishLocal("v", tuple.Tuple{
					tuple.String(nd.Addr()), tuple.Int(int64(i)), tuple.Float(2.5),
				})
			}
		}
		coord := cluster.Nodes[0].Addr()
		cluster.Net.ResetStats()
		var value float64
		if centralized {
			rows, err := bases[0].CollectAll(context.Background(), "v", 300*time.Millisecond)
			if err != nil {
				return AggResult{}, err
			}
			for _, r := range rows {
				value += r[2].F
			}
		} else {
			res, err := cluster.Nodes[0].Query(context.Background(), "SELECT SUM(val) FROM v")
			if err != nil {
				return AggResult{}, err
			}
			if len(res.Rows) == 1 {
				value = res.Rows[0][0].F
			}
		}
		stats := cluster.Net.Stats()
		root := cluster.Net.PerNode(coord)
		if value != want {
			return AggResult{}, fmt.Errorf("bench: %s computed %v, want %v", mode, value, want)
		}
		return AggResult{
			Mode: mode, Msgs: stats.Sent, Bytes: stats.BytesSent,
			RootInMsgs: root.MsgsIn, RootInBytes: root.BytesIn, Value: value,
		}, nil
	}

	var out []AggResult
	for _, c := range []struct {
		mode        string
		noCombine   bool
		centralized bool
	}{
		{"in-network+combine", false, false},
		{"in-network", true, false},
		{"centralized", false, true},
	} {
		r, err := run(c.mode, c.noCombine, c.centralized)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// S3: join strategies

// JoinResult is one strategy's cost for the same join.
type JoinResult struct {
	Strategy string
	Msgs     uint64
	Bytes    uint64
	Rows     int
}

// JoinStrategies runs the same equi-join under symmetric-hash,
// fetch-matches, and Bloom rewrites. leftPerNode tuples per node
// reference matchFrac of rightTotal DHT-published right tuples.
func JoinStrategies(n, leftPerNode, rightTotal int, matchFrac float64, seed int64) ([]JoinResult, error) {
	if n == 0 {
		n = 16
	}
	if leftPerNode == 0 {
		leftPerNode = 10
	}
	if rightTotal == 0 {
		rightTotal = 600
	}
	if matchFrac == 0 {
		matchFrac = 0.1
	}
	leftSchema := tuple.MustSchema("l", []tuple.Column{
		{Name: "node", Type: tuple.TString},
		{Name: "k", Type: tuple.TInt},
	}, "node", "k")
	rightSchema := tuple.MustSchema("r", []tuple.Column{
		{Name: "k", Type: tuple.TInt},
		{Name: "info", Type: tuple.TString},
	}, "k")

	matched := int(matchFrac * float64(rightTotal))
	if matched < 1 {
		matched = 1
	}

	run := func(strategy string) (JoinResult, error) {
		cfg := piertest.FastConfig()
		// Size the Bloom filters to the workload: oversized filters
		// would drown the rehash savings they buy (the bit-budget
		// trade-off the S3 ablation sweeps).
		cfg.BloomBits = 2048
		cluster, err := piertest.New(piertest.Options{N: n, Seed: seed, NodeCfg: &cfg})
		if err != nil {
			return JoinResult{}, err
		}
		defer cluster.Close()
		for _, nd := range cluster.Nodes {
			if err := nd.DefineTable(leftSchema, time.Minute); err != nil {
				return JoinResult{}, err
			}
			if err := nd.DefineTable(rightSchema, time.Minute); err != nil {
				return JoinResult{}, err
			}
		}
		// Left tuples reference keys 0..matched-1 round-robin (all
		// join); right table holds rightTotal keys, mostly unmatched.
		for i, nd := range cluster.Nodes {
			for j := 0; j < leftPerNode; j++ {
				k := int64((i*leftPerNode + j) % matched)
				nd.PublishLocal("l", tuple.Tuple{tuple.String(nd.Addr()), tuple.Int(k)})
			}
		}
		for k := 0; k < rightTotal; k++ {
			nd := cluster.Nodes[k%n]
			if err := nd.Publish("r", tuple.Tuple{tuple.Int(int64(k)), tuple.String(fmt.Sprintf("info-%d", k))}); err != nil {
				return JoinResult{}, err
			}
		}
		time.Sleep(500 * time.Millisecond) // let right-table puts land
		cluster.Net.ResetStats()

		sql := "SELECT a.node, b.info FROM l a JOIN r b ON a.k = b.k"
		strat := map[string]plan.JoinStrategy{
			"symmetric": plan.SymmetricHash,
			"fetch":     plan.FetchMatches,
			"bloom":     plan.BloomJoin,
		}[strategy]
		res, err := cluster.Nodes[0].QueryWithOptions(context.Background(), sql,
			plan.Options{Strategy: &strat})
		if err != nil {
			return JoinResult{}, err
		}
		stats := cluster.Net.Stats()
		return JoinResult{Strategy: strategy, Msgs: stats.Sent, Bytes: stats.BytesSent, Rows: len(res.Rows)}, nil
	}

	var out []JoinResult
	for _, s := range []string{"symmetric", "fetch", "bloom"} {
		r, err := run(s)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE

// ExplainAnalyze runs a representative join + aggregation query with
// per-operator instrumentation on and returns the result row count
// plus the network-wide EXPLAIN ANALYZE report — every pipeline stage
// (participant scans and rehash, join collectors, aggregation
// collectors, coordinator tail) with its rows/bytes/latency counters.
func ExplainAnalyze(n int, seed int64) (int, string, error) {
	if n == 0 {
		n = 16
	}
	cluster, err := piertest.New(piertest.Options{N: n, Seed: seed})
	if err != nil {
		return 0, "", err
	}
	defer cluster.Close()
	leftSchema := tuple.MustSchema("l", []tuple.Column{
		{Name: "node", Type: tuple.TString},
		{Name: "k", Type: tuple.TInt},
	}, "node", "k")
	rightSchema := tuple.MustSchema("r", []tuple.Column{
		{Name: "k", Type: tuple.TInt},
		{Name: "info", Type: tuple.TString},
	}, "k")
	for _, nd := range cluster.Nodes {
		if err := nd.DefineTable(leftSchema, time.Minute); err != nil {
			return 0, "", err
		}
		if err := nd.DefineTable(rightSchema, time.Minute); err != nil {
			return 0, "", err
		}
	}
	const perNode, distinctKeys = 10, 8
	for i, nd := range cluster.Nodes {
		for j := 0; j < perNode; j++ {
			k := int64((i*perNode + j) % distinctKeys)
			nd.PublishLocal("l", tuple.Tuple{tuple.String(nd.Addr()), tuple.Int(k)})
		}
	}
	for k := 0; k < distinctKeys; k++ {
		nd := cluster.Nodes[k%n]
		if err := nd.Publish("r", tuple.Tuple{tuple.Int(int64(k)), tuple.String(fmt.Sprintf("info-%d", k))}); err != nil {
			return 0, "", err
		}
	}
	time.Sleep(400 * time.Millisecond) // let right-table puts land
	strat := plan.SymmetricHash
	res, err := cluster.Nodes[0].QueryWithOptions(context.Background(),
		"SELECT b.info, COUNT(a.node) AS hits FROM l a JOIN r b ON a.k = b.k GROUP BY b.info ORDER BY hits DESC",
		plan.Options{Strategy: &strat, Analyze: true})
	if err != nil {
		return 0, "", err
	}
	return len(res.Rows), res.AnalyzeReport, nil
}

// ---------------------------------------------------------------------------
// S4: churn survival vs replication factor

// ChurnResult is one replication factor's data-survival outcome.
type ChurnResult struct {
	Replicas     int
	Survived     int
	Total        int
	SurvivedFrac float64
}

// ChurnSurvival publishes items into the DHT, kills a fraction of the
// nodes, waits for republish repair, and measures how many items
// remain readable — the successor-list replication ablation.
func ChurnSurvival(n, items, kills int, replicas []int, seed int64) ([]ChurnResult, error) {
	if n == 0 {
		n = 16
	}
	if items == 0 {
		items = 60
	}
	if kills == 0 {
		kills = n / 4
	}
	if len(replicas) == 0 {
		replicas = []int{0, 1, 2, 4}
	}
	schema := tuple.MustSchema("data", []tuple.Column{
		{Name: "k", Type: tuple.TString},
		{Name: "v", Type: tuple.TInt},
	}, "k")

	var out []ChurnResult
	for _, r := range replicas {
		cfg := piertest.FastConfig()
		cfg.DHT.Replicas = r
		if r == 0 {
			cfg.DHT.Replicas = -1 // sentinel: dht treats 0 as default
		}
		cluster, err := piertest.New(piertest.Options{N: n, Seed: seed, NodeCfg: &cfg})
		if err != nil {
			return nil, err
		}
		for _, nd := range cluster.Nodes {
			if err := nd.DefineTable(schema, 5*time.Minute); err != nil {
				cluster.Close()
				return nil, err
			}
		}
		for i := 0; i < items; i++ {
			nd := cluster.Nodes[i%n]
			if err := nd.Publish("data", tuple.Tuple{
				tuple.String(fmt.Sprintf("item-%d", i)), tuple.Int(int64(i)),
			}); err != nil {
				cluster.Close()
				return nil, err
			}
		}
		time.Sleep(600 * time.Millisecond) // placement + replication
		// Kill nodes 1..kills (never the prober, node 0).
		for i := 1; i <= kills && i < n; i++ {
			cluster.Net.SetDown(cluster.Nodes[i].Addr(), true)
		}
		// Allow failure detection + republish repair.
		time.Sleep(2 * time.Second)
		survived := 0
		for i := 0; i < items; i++ {
			rid := tuple.Tuple{tuple.String(fmt.Sprintf("item-%d", i))}.HashKey([]int{0})
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			got, err := cluster.Nodes[0].Store().Get(ctx, "table:data", rid)
			cancel()
			if err == nil && len(got) > 0 {
				survived++
			}
		}
		cluster.Close()
		out = append(out, ChurnResult{
			Replicas: r, Survived: survived, Total: items,
			SurvivedFrac: float64(survived) / float64(items),
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// S5: search vs flooding

// SearchResult is one strategy's cost for the same keyword query.
type SearchResult struct {
	Strategy string
	Msgs     uint64
	Files    int
}

// SearchComparison indexes the same corpus in the DHT and in
// node-local tables, then answers one keyword query by DHT gets and
// by bounded flooding, reporting message costs.
func SearchComparison(n, files int, seed int64) ([]SearchResult, error) {
	if n == 0 {
		n = 24
	}
	if files == 0 {
		files = 40
	}
	cluster, err := piertest.New(piertest.Options{N: n, Seed: seed})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	indexes := make([]*search.Index, n)
	floods := make([]*baseline.Flood, n)
	for i, nd := range cluster.Nodes {
		if indexes[i], err = search.New(nd, time.Minute); err != nil {
			return nil, err
		}
		if floods[i], err = baseline.NewFlood(nd); err != nil {
			return nil, err
		}
	}
	hitEvery := 4 // every 4th file matches the query word
	for f := 0; f < files; f++ {
		words := []string{fmt.Sprintf("w%d", f%7)}
		if f%hitEvery == 0 {
			words = append(words, "target")
		}
		name := fmt.Sprintf("file-%03d", f)
		if err := indexes[f%n].PublishFile(name, words); err != nil {
			return nil, err
		}
		if err := floods[f%n].ShareFile(name, words); err != nil {
			return nil, err
		}
	}
	time.Sleep(600 * time.Millisecond)

	cluster.Net.ResetStats()
	viaGet, err := indexes[0].SearchGet(context.Background(), "target")
	if err != nil {
		return nil, err
	}
	dhtMsgs := cluster.Net.Stats().Sent

	cluster.Net.ResetStats()
	// Hop budget 10: with successor-list fan-out 4, depth 6 only just
	// covers 24 nodes; extra slack keeps recall complete so the
	// comparison is fair (full recall on both sides).
	viaFlood, err := floods[0].Search(context.Background(), "target", 10, 400*time.Millisecond)
	if err != nil {
		return nil, err
	}
	floodMsgs := cluster.Net.Stats().Sent
	return []SearchResult{
		{Strategy: "dht-get", Msgs: dhtMsgs, Files: len(viaGet)},
		{Strategy: "flooding", Msgs: floodMsgs, Files: len(viaFlood)},
	}, nil
}

// ---------------------------------------------------------------------------
// S6: recursive topology closure

// RecursiveResult summarizes one in-network closure run.
type RecursiveResult struct {
	Facts    int
	Expected int
	Msgs     uint64
	AgreeSQL bool
}

// RecursiveTopology publishes a chain graph across the cluster, runs
// the in-network reachability expansion, and cross-checks against the
// SQL WITH RECURSIVE answer.
func RecursiveTopology(n, chainLen int, seed int64) (*RecursiveResult, error) {
	if n == 0 {
		n = 12
	}
	if chainLen == 0 {
		chainLen = 8
	}
	cluster, err := piertest.New(piertest.Options{N: n, Seed: seed})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	mappers := make([]*topology.Mapper, n)
	for i, nd := range cluster.Nodes {
		if mappers[i], err = topology.New(nd, time.Minute); err != nil {
			return nil, err
		}
	}
	for i := 0; i < chainLen; i++ {
		src := fmt.Sprintf("v%d", i)
		dst := fmt.Sprintf("v%d", i+1)
		if err := mappers[i%n].PublishLink(src, dst); err != nil {
			return nil, err
		}
	}
	time.Sleep(200 * time.Millisecond)
	cluster.Net.ResetStats()
	inNet, err := mappers[0].Reachable(context.Background(), "v0", 600*time.Millisecond)
	if err != nil {
		return nil, err
	}
	msgs := cluster.Net.Stats().Sent
	viaSQL, err := mappers[0].ReachableSQL(context.Background(), "v0")
	if err != nil {
		return nil, err
	}
	agree := len(inNet) == len(viaSQL)
	if agree {
		for i := range inNet {
			if inNet[i] != viaSQL[i] {
				agree = false
				break
			}
		}
	}
	return &RecursiveResult{Facts: len(inNet), Expected: chainLen, Msgs: msgs, AgreeSQL: agree}, nil
}

// ---------------------------------------------------------------------------
// S7: route batching on the symmetric-hash rehash path

// BatchJoinResult is one batching mode's cost for the same
// symmetric-hash join.
type BatchJoinResult struct {
	Mode          string  // "batched" or "unbatched"
	Rows          int     // result rows
	RoutedMsgs    uint64  // overlay route forwards across the cluster
	Msgs          uint64  // total simulated network messages
	Bytes         uint64  // total simulated network bytes
	BytesPerTuple float64 // network bytes per rehashed tuple
	Frames        uint64  // multi-record frames shipped (batched mode)
	FrameRecords  uint64  // records carried inside frames
	rowsDigest    string  // canonical (sorted) encoding of the result rows
}

// SameRows reports whether two runs returned byte-identical result
// sets (order-insensitive; the engine does not promise arrival order).
func (r BatchJoinResult) SameRows(o BatchJoinResult) bool {
	return r.rowsDigest == o.rowsDigest
}

// RouteBatchingJoin runs the same symmetric-hash equi-join with route
// batching on and off and reports the message-count/byte costs — the
// per-destination coalescing win on the paper's dominant cost metric.
// perSide tuples per side are spread round-robin over n nodes; left
// join keys cycle through distinctKeys values, and the right side
// holds one matching tuple per key plus non-matching bulk, so every
// left tuple joins exactly once and both sides are fully rehashed.
func RouteBatchingJoin(n, perSide, distinctKeys int, seed int64) ([]BatchJoinResult, error) {
	if n == 0 {
		n = 32
	}
	if perSide == 0 {
		perSide = 1000
	}
	if distinctKeys == 0 {
		distinctKeys = 5
	}
	leftSchema := tuple.MustSchema("bl", []tuple.Column{
		{Name: "node", Type: tuple.TString},
		{Name: "i", Type: tuple.TInt},
		{Name: "k", Type: tuple.TInt},
	}, "node", "i")
	rightSchema := tuple.MustSchema("br", []tuple.Column{
		{Name: "k", Type: tuple.TInt},
		{Name: "info", Type: tuple.TString},
	}, "k", "info")

	routeForwards := func(cluster *piertest.Cluster) uint64 {
		var total uint64
		for _, nd := range cluster.Nodes {
			if cn, ok := nd.Router().(*chord.Node); ok {
				_, _, fwd, _ := cn.MetricsSnapshot()
				total += fwd
			}
		}
		return total
	}

	run := func(mode string, disabled bool) (BatchJoinResult, error) {
		cfg := piertest.FastConfig()
		cfg.Batch.Disabled = disabled
		// Let frames accumulate for a whole local scan; the explicit
		// Flush barrier at scan completion bounds latency, so the
		// delay knob can sit well above the scan duration.
		cfg.Batch.MaxDelay = 25 * time.Millisecond
		// S7 isolates the route-batching layer, so pin the execution
		// pipelines to tuple-at-a-time: the vectorized ship path
		// pre-groups same-destination tuples into multi-record frames
		// on its own, which would hand the "unbatched" run most of the
		// coalescing win and hide what this experiment measures.
		cfg.BatchSize = 1
		cluster, err := piertest.New(piertest.Options{N: n, Seed: seed, NodeCfg: &cfg})
		if err != nil {
			return BatchJoinResult{}, err
		}
		defer cluster.Close()
		for _, nd := range cluster.Nodes {
			if err := nd.DefineTable(leftSchema, time.Minute); err != nil {
				return BatchJoinResult{}, err
			}
			if err := nd.DefineTable(rightSchema, time.Minute); err != nil {
				return BatchJoinResult{}, err
			}
		}
		for i := 0; i < perSide; i++ {
			nd := cluster.Nodes[i%n]
			if err := nd.PublishLocal("bl", tuple.Tuple{
				tuple.String(nd.Addr()), tuple.Int(int64(i)), tuple.Int(int64(i % distinctKeys)),
			}); err != nil {
				return BatchJoinResult{}, err
			}
			rk, info := int64(distinctKeys+i%distinctKeys), fmt.Sprintf("miss-%d", i)
			if i < distinctKeys {
				rk, info = int64(i), fmt.Sprintf("match-%d", i)
			}
			if err := nd.PublishLocal("br", tuple.Tuple{tuple.Int(rk), tuple.String(info)}); err != nil {
				return BatchJoinResult{}, err
			}
		}
		fwdBefore := routeForwards(cluster)
		cluster.Net.ResetStats()
		strat := plan.SymmetricHash
		res, err := cluster.Nodes[0].QueryWithOptions(context.Background(),
			"SELECT a.node, a.i, b.info FROM bl a JOIN br b ON a.k = b.k",
			plan.Options{Strategy: &strat})
		if err != nil {
			return BatchJoinResult{}, err
		}
		stats := cluster.Net.Stats()
		out := BatchJoinResult{
			Mode:          mode,
			Rows:          len(res.Rows),
			RoutedMsgs:    routeForwards(cluster) - fwdBefore,
			Msgs:          stats.Sent,
			Bytes:         stats.BytesSent,
			BytesPerTuple: float64(stats.BytesSent) / float64(2*perSide),
			rowsDigest:    rowsDigest(res.Rows),
		}
		for _, nd := range cluster.Nodes {
			if b := nd.Batcher(); b != nil {
				m := b.MetricsRef()
				out.Frames += m.FramesOut.Load()
				out.FrameRecords += m.FrameRecords.Load()
			}
		}
		return out, nil
	}

	var out []BatchJoinResult
	for _, c := range []struct {
		mode     string
		disabled bool
	}{{"batched", false}, {"unbatched", true}} {
		r, err := run(c.mode, c.disabled)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// rowsDigest canonicalizes a result set: encoded rows, sorted, then
// length-prefixed before joining so row boundaries stay unambiguous
// (the raw encodings are binary and may contain any separator byte).
func rowsDigest(rows []tuple.Tuple) string {
	enc := make([]string, len(rows))
	for i, t := range rows {
		enc[i] = string(t.Bytes())
	}
	sort.Strings(enc)
	var sb strings.Builder
	for _, e := range enc {
		fmt.Fprintf(&sb, "%d:%s", len(e), e)
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Multiway joins: logical join trees + cost-based strategy choice

// MultiwayResult is one execution mode's outcome for the same 3-table
// equi-join.
type MultiwayResult struct {
	// Mode is "auto" (cost-based optimizer), "symmetric", or "fetch"
	// (forced strategies).
	Mode string
	// Plan is the EXPLAIN of the executed plan (join order and
	// per-stage strategies).
	Plan string
	// Rows is the distributed result-row count.
	Rows int
	// Msgs / Bytes are the network totals of the distributed run.
	Msgs  uint64
	Bytes uint64
	// MatchesBaseline reports byte-identical rows
	// (order-insensitive) versus the single-node reference executor.
	MatchesBaseline bool
}

// MultiwayJoin runs a 3-table equi-join (orders ⋈ users ⋈ items) over
// an n-node simulated network three ways — optimizer-chosen
// strategies from declared catalog stats, forced symmetric-hash
// (stacking two rehash/collector stages), and a forced fetch-matches
// chain — and verifies each result set byte-identical against the
// single-node baseline executor. The declared stats describe a
// production-shaped workload (small users, large items), so the
// optimizer picks a mixed plan: symmetric-hash into stage-0
// collectors, then fetch-matches probes in place at those collectors.
func MultiwayJoin(n, ordersPerNode int, seed int64) ([]MultiwayResult, error) {
	if n == 0 {
		n = 32
	}
	if ordersPerNode == 0 {
		ordersPerNode = 8
	}
	usersSchema := tuple.MustSchema("users", []tuple.Column{
		{Name: "uid", Type: tuple.TInt},
		{Name: "name", Type: tuple.TString},
	}, "uid")
	ordersSchema := tuple.MustSchema("orders", []tuple.Column{
		{Name: "node", Type: tuple.TString},
		{Name: "oid", Type: tuple.TInt},
		{Name: "uid", Type: tuple.TInt},
		{Name: "item", Type: tuple.TInt},
	}, "node", "oid")
	itemsSchema := tuple.MustSchema("items", []tuple.Column{
		{Name: "item", Type: tuple.TInt},
		{Name: "price", Type: tuple.TFloat},
	}, "item")
	const nUsers, nItems = 40, 30

	cluster, err := piertest.New(piertest.Options{N: n, Seed: seed})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	var bases []*baseline.Centralized
	for _, nd := range cluster.Nodes {
		bases = append(bases, baseline.NewCentralized(nd))
		for _, s := range []*tuple.Schema{usersSchema, ordersSchema, itemsSchema} {
			if err := nd.DefineTable(s, time.Minute); err != nil {
				return nil, err
			}
		}
	}
	// users and items publish into the DHT (keyed on the join
	// columns, so fetch-matches is legal); orders stay in each node's
	// local partition.
	for u := 0; u < nUsers; u++ {
		nd := cluster.Nodes[u%n]
		if err := nd.Publish("users", tuple.Tuple{tuple.Int(int64(u)), tuple.String(fmt.Sprintf("user-%d", u))}); err != nil {
			return nil, err
		}
	}
	for it := 0; it < nItems; it++ {
		nd := cluster.Nodes[it%n]
		if err := nd.Publish("items", tuple.Tuple{tuple.Int(int64(it)), tuple.Float(float64(it) + 0.5)}); err != nil {
			return nil, err
		}
	}
	for i, nd := range cluster.Nodes {
		for j := 0; j < ordersPerNode; j++ {
			oid := i*ordersPerNode + j
			if err := nd.PublishLocal("orders", tuple.Tuple{
				tuple.String(nd.Addr()), tuple.Int(int64(oid)),
				tuple.Int(int64(oid % nUsers)), tuple.Int(int64(oid % nItems)),
			}); err != nil {
				return nil, err
			}
		}
	}
	// Declared stats shape the optimizer's choice (they are planner
	// hints, deliberately describing a larger production workload).
	coord := cluster.Nodes[0]
	for tbl, st := range map[string]catalog.TableStats{
		"users":  {Rows: 100, Distinct: map[string]int64{"uid": 100}},
		"orders": {Rows: 500, Distinct: map[string]int64{"uid": 80, "item": 50}},
		"items":  {Rows: 10000, Distinct: map[string]int64{"item": 10000}},
	} {
		if err := coord.SetTableStats(tbl, st); err != nil {
			return nil, err
		}
	}
	time.Sleep(500 * time.Millisecond) // let DHT puts land

	const sql = "SELECT o.oid, u.name, i.price FROM orders o JOIN users u ON o.uid = u.uid JOIN items i ON o.item = i.item"
	ref, err := bases[0].QuerySQL(context.Background(), sql, 300*time.Millisecond)
	if err != nil {
		return nil, fmt.Errorf("bench: baseline executor: %w", err)
	}
	refDigest := rowsDigest(ref.Rows)

	modes := []struct {
		mode  string
		strat *plan.JoinStrategy
	}{
		{"auto", nil},
		{"symmetric", strategyPtr(plan.SymmetricHash)},
		{"fetch", strategyPtr(plan.FetchMatches)},
	}
	var out []MultiwayResult
	for _, m := range modes {
		cluster.Net.ResetStats()
		res, err := coord.QueryWithOptions(context.Background(), sql, plan.Options{Strategy: m.strat})
		if err != nil {
			return nil, fmt.Errorf("bench: multiway %s: %w", m.mode, err)
		}
		planText := ""
		if m.strat == nil {
			if planText, err = coord.Explain(sql); err != nil {
				return nil, err
			}
		}
		stats := cluster.Net.Stats()
		out = append(out, MultiwayResult{
			Mode: m.mode, Plan: planText, Rows: len(res.Rows),
			Msgs: stats.Sent, Bytes: stats.BytesSent,
			MatchesBaseline: rowsDigest(res.Rows) == refDigest,
		})
	}
	return out, nil
}

func strategyPtr(s plan.JoinStrategy) *plan.JoinStrategy { return &s }

// ---------------------------------------------------------------------------
// Ablation: Chord vs Kademlia under the same workload

// OverlayResult is one overlay's routing/maintenance profile.
type OverlayResult struct {
	Overlay     string
	MeanHops    float64
	Maintenance uint64
	SumOK       bool
}

// OverlayAblation runs the same lookups and the same aggregation
// query over Chord and Kademlia — the paper's claim that PIER is
// DHT-agnostic, quantified.
func OverlayAblation(n, lookups int, seed int64) ([]OverlayResult, error) {
	if n == 0 {
		n = 16
	}
	if lookups == 0 {
		lookups = 40
	}
	schema := tuple.MustSchema("x", []tuple.Column{
		{Name: "node", Type: tuple.TString},
		{Name: "v", Type: tuple.TInt},
	}, "node")

	run := func(overlayKind string) (OverlayResult, error) {
		cfg := piertest.FastConfig()
		cfg.Overlay = overlayKind
		cfg.Kademlia = kademlia.Config{K: 8, Alpha: 3, RefreshEvery: 50 * time.Millisecond}
		cfg.CAN = can.Config{PingEvery: 50 * time.Millisecond}
		cluster, err := piertest.New(piertest.Options{N: n, Seed: seed, NodeCfg: &cfg})
		if err != nil {
			return OverlayResult{}, err
		}
		defer cluster.Close()
		time.Sleep(500 * time.Millisecond)
		totalHops := 0
		for i := 0; i < lookups; i++ {
			key := id.HashString(fmt.Sprintf("abl-%d", i))
			_, hops, err := cluster.Nodes[i%n].Router().Lookup(context.Background(), key)
			if err != nil {
				continue
			}
			totalHops += hops
		}
		for i, nd := range cluster.Nodes {
			if err := nd.DefineTable(schema, time.Minute); err != nil {
				return OverlayResult{}, err
			}
			nd.PublishLocal("x", tuple.Tuple{tuple.String(nd.Addr()), tuple.Int(int64(i + 1))})
		}
		res, err := cluster.Nodes[0].Query(context.Background(), "SELECT SUM(v) FROM x")
		sumOK := err == nil && len(res.Rows) == 1 && res.Rows[0][0].I == int64(n*(n+1)/2)
		var maint uint64
		for _, nd := range cluster.Nodes {
			switch r := nd.Router().(type) {
			case *chord.Node:
				_, _, _, m := r.MetricsSnapshot()
				maint += m
			case *kademlia.Node:
				_, _, _, m := r.MetricsSnapshot()
				maint += m
			case *can.Node:
				_, _, _, m := r.MetricsSnapshot()
				maint += m
			}
		}
		return OverlayResult{
			Overlay:     overlayKind,
			MeanHops:    float64(totalHops) / float64(lookups),
			Maintenance: maint,
			SumOK:       sumOK,
		}, nil
	}

	var out []OverlayResult
	for _, k := range []string{"chord", "kademlia", "can"} {
		r, err := run(k)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Helpers shared with cmd/pierbench

// NetStats re-exports the simulated network's counters for printing.
type NetStats = simnet.Stats

package bench

import (
	"context"
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/physical"
	"repro/internal/tuple"
)

// LocalJoinWorkload holds the pre-encoded stored payloads of the
// local join hot-path benchmark, as a DHT partition would hold them.
// Build it once (outside any timed loop) and Run it per iteration.
type LocalJoinWorkload struct {
	NLeft, NRight int
	left, right   [][]byte
}

// NewLocalJoinWorkload encodes nLeft left tuples (unique node column,
// join key i % nRight) and nRight right tuples (unique key): every
// left tuple joins exactly once.
func NewLocalJoinWorkload(nLeft, nRight int) *LocalJoinWorkload {
	w := &LocalJoinWorkload{NLeft: nLeft, NRight: nRight}
	w.left = make([][]byte, nLeft)
	for i := range w.left {
		w.left[i] = tuple.Tuple{tuple.String(fmt.Sprintf("node-%d", i)), tuple.Int(int64(i % nRight))}.Bytes()
	}
	w.right = make([][]byte, nRight)
	for i := range w.right {
		w.right[i] = tuple.Tuple{tuple.Int(int64(i)), tuple.String(fmt.Sprintf("info-%d", i))}.Bytes()
	}
	return w
}

// Run drives the local-execution join hot path with no network: left
// and right scan pipelines (scan → filter → rehash exchange) feed a
// symmetric-hash join collector through the same batch ship shape the
// distributed engine uses, at the given vectorization width and scan
// parallelism. Returns the joined row count; wrap the call in
// testing.Benchmark (or b.N loops) for ns/op, rows/sec, and
// allocs/op — this is the microcosm BENCH_PR4.json tracks for the
// batch-at-a-time speedup.
func (wl *LocalJoinWorkload) Run(batchSize, workers int) (int, error) {
	return wl.run(batchSize, workers, nil)
}

// RunInstrumented is Run with the obs hot-path instrumentation the
// distributed engine applies live: a per-batch ship counter and batch
// size histogram plus a per-row sink counter, all registered in reg.
// `pierbench -experiment obs` compares it against Run to measure the
// instrumentation overhead budget (BENCH_PR10.json tracks ≤3%).
func (wl *LocalJoinWorkload) RunInstrumented(batchSize, workers int, reg *obs.Registry) (int, error) {
	if reg == nil {
		reg = obs.New()
	}
	return wl.run(batchSize, workers, reg)
}

func (wl *LocalJoinWorkload) run(batchSize, workers int, reg *obs.Registry) (int, error) {
	// Hot-path instruments: resolved once here, one atomic add per
	// observation inside the loops — the same pattern every layer of
	// the engine uses. nil when uninstrumented (the base path keeps
	// the same nil check the nil-safe instruments cost everywhere).
	var shipBatches, rowsOut *obs.Counter
	var shipSize *obs.Histogram
	if reg != nil {
		shipBatches = reg.Counter("bench_ship_batches_total")
		rowsOut = reg.Counter("bench_rows_out_total")
		shipSize = reg.Histogram("bench_ship_batch_tuples", obs.CountBuckets)
	}
	nLeft := wl.NLeft
	leftPayloads, rightPayloads := wl.left, wl.right
	shard := func(payloads [][]byte) func(ns string, partitions int) [][][]byte {
		return func(ns string, partitions int) [][][]byte {
			if partitions > len(payloads) {
				partitions = len(payloads)
			}
			if partitions < 1 {
				partitions = 1
			}
			out := make([][][]byte, partitions)
			per := (len(payloads) + partitions - 1) / partitions
			for i := 0; i < partitions; i++ {
				lo := i * per
				hi := lo + per
				if hi > len(payloads) {
					hi = len(payloads)
				}
				if lo < hi {
					out[i] = payloads[lo:hi]
				}
			}
			return out
		}
	}

	// Collector: the symmetric-hash probe plus a counting sink, fed
	// through inlets exactly like rehashed network arrivals.
	collector := physical.NewPipeline("join-collector")
	collector.SetDetail(false)
	inL, inR := physical.NewInlet(), physical.NewInlet()
	l := collector.Add("probe-src.l", inL.Source)
	r := collector.Add("probe-src.r", inR.Source)
	jp := collector.Add("join-probe", physical.JoinProbe([2]int{2, 2}, [2][]int{{1}, {0}}))
	collector.Connect(l, jp)
	collector.Connect(r, jp)
	rows := 0
	sink := collector.Add("sink", physical.FuncSink(func(t tuple.Tuple) {
		rows++
		if rowsOut != nil {
			rowsOut.Inc()
		}
	}))
	collector.Connect(jp, sink)
	run, err := collector.Start(context.Background())
	if err != nil {
		return 0, err
	}

	ship := func(in *physical.Inlet) func(stage, side int, window uint64, keys [][]byte, ts []tuple.Tuple) int {
		return func(stage, side int, window uint64, keys [][]byte, ts []tuple.Tuple) int {
			if shipBatches != nil {
				shipBatches.Inc()
				shipSize.Observe(uint64(len(ts)))
			}
			// The exchange recycles its container after the call, so
			// hand the inlet a copy — the same transfer the network
			// decode path performs.
			if len(ts) == 1 {
				in.Push(dataflow.DataMsg(ts[0]))
				return 1
			}
			in.Push(dataflow.BatchMsg(append(dataflow.GetBatch(), ts...), window))
			return len(ts)
		}
	}
	pred := &expr.Cmp{Op: expr.GE, L: &expr.Col{Index: 1}, R: &expr.Lit{V: tuple.Int(0)}}

	side := func(name string, payloads [][]byte, sideNo int, keyCols []int, in *physical.Inlet) error {
		p := physical.NewPipeline(name)
		p.SetDetail(false)
		src := p.Add("scan", physical.ScanSource(shard(payloads), name, 2, batchSize, workers))
		prev := src
		if sideNo == 0 {
			f := p.Add("filter", physical.Filter(pred))
			p.Connect(prev, f)
			prev = f
		}
		rh := p.Add("rehash", physical.RehashExchange(0, sideNo, keyCols, ship(in), nil, nil))
		p.Connect(prev, rh)
		return p.Run(context.Background())
	}
	if err := side("r", rightPayloads, 1, []int{0}, inR); err != nil {
		return 0, err
	}
	if err := side("l", leftPayloads, 0, []int{1}, inL); err != nil {
		return 0, err
	}
	inL.Close()
	inR.Close()
	if err := run.Wait(); err != nil {
		return 0, err
	}
	if rows != nLeft {
		return rows, fmt.Errorf("local join pipeline produced %d rows, want %d", rows, nLeft)
	}
	return rows, nil
}

package bench

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/pier"
	"repro/internal/piertest"
	"repro/internal/server"
	"repro/internal/simnet"
	"repro/internal/tuple"
)

// percentileDur is the p-th percentile (0..1) of the latency sample.
func percentileDur(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// ---------------------------------------------------------------------------
// Serve: the query-service benchmark — concurrent clients against one
// pierd front door over real TCP, reporting the latency trajectory as
// concurrency grows past the admission-control bounds, plus the
// shared-scan on/off comparison for concurrent continuous queries.

// ServeConfig parameterizes the serve experiment.
type ServeConfig struct {
	N           int   // cluster size (default 16)
	Seed        int64 // simulation seed (default 1)
	Concurrency []int // client tiers (default 10, 100, 1000)
	// MaxInFlight bounds concurrently executing queries at the
	// service; the tiers above it measure queueing (default 16 — on
	// the in-process simulation, more concurrent broadcasts than this
	// keep result traffic flowing continuously, quiescence never
	// settles, and every query runs to its max life instead).
	MaxInFlight int
	// SharedSubscribers sizes the shared-scan on/off comparison
	// (default 100).
	SharedSubscribers int
}

// ServeTier is one concurrency level's aggregate.
type ServeTier struct {
	Clients  int
	Queries  int // completed successfully
	Rejected int // shed by admission control
	Wall     time.Duration
	QPS      float64 // completed queries per wall second
	P50      time.Duration
	P95      time.Duration
	P99      time.Duration
}

// ServeSharedMode is one side of the shared-scan comparison: the given
// number of subscribers to one continuous statement, with scan sharing
// on or off.
type ServeSharedMode struct {
	Shared      bool
	Subscribers int
	// Coordinated counts underlying continuous queries launched
	// network-wide for the whole group (1 when shared, Subscribers
	// when dedicated).
	Coordinated int
	// AttachWall is the time to get every subscriber attached.
	AttachWall time.Duration
	// Delivered counts subscribers that received two windows before
	// the deadline; DeliverWall is how long the slowest of them took.
	Delivered   int
	DeliverWall time.Duration
}

// ServeResult is the whole experiment.
type ServeResult struct {
	Tiers      []ServeTier
	CacheStats engine.CacheStats
	SharedOn   ServeSharedMode
	SharedOff  ServeSharedMode
}

// Serve runs the query-service benchmark.
func Serve(cfg ServeConfig) (*ServeResult, error) {
	if cfg.N == 0 {
		cfg.N = 16
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if len(cfg.Concurrency) == 0 {
		cfg.Concurrency = []int{10, 100, 1000}
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 16
	}
	if cfg.SharedSubscribers == 0 {
		cfg.SharedSubscribers = 100
	}

	nodeCfg := piertest.FastConfig()
	c, err := piertest.New(piertest.Options{
		N: cfg.N, Seed: cfg.Seed, NodeCfg: &nodeCfg,
		// Every query coordinates at the front-door node; give its
		// inbox room for the result traffic of MaxInFlight queries.
		NetCfg: &simnet.Config{InboxDepth: 1 << 16},
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if err := serveSeedTables(c.Nodes); err != nil {
		return nil, err
	}

	svc := engine.New(c.Nodes[0], engine.Config{
		MaxInFlight: cfg.MaxInFlight,
		MaxQueued:   4096,
		// The 1000-client tier intentionally queues far past the
		// in-flight bound; a short timeout would shed the tail instead
		// of measuring it.
		QueueTimeout:     time.Minute,
		MaxSubscriptions: 4096,
		SharedScans:      true,
	})
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := server.Serve(ln, svc)
	defer srv.Close()

	out := &ServeResult{}
	for _, clients := range cfg.Concurrency {
		fmt.Printf("  tier %d clients...", clients)
		tier, err := serveTier(srv.Addr().String(), clients)
		if err != nil {
			fmt.Println()
			return nil, fmt.Errorf("tier %d: %w", clients, err)
		}
		fmt.Printf(" %d queries in %v\n", tier.Queries, tier.Wall.Round(time.Millisecond))
		out.Tiers = append(out.Tiers, *tier)
	}
	out.CacheStats = svc.Cache().Stats()

	// Shared-scan comparison: the same subscriber count, one
	// continuous statement, sharing on vs off. Uses engine sessions
	// directly — the wire adds nothing to what is being compared.
	stop := make(chan struct{})
	defer close(stop)
	go serveFeed(c.Nodes[1], stop)
	go serveFeed(c.Nodes[cfg.N/2], stop)
	onSvc := svc
	offSvc := engine.New(c.Nodes[0], engine.Config{
		MaxSubscriptions: 4096, SharedScans: false,
	})
	defer offSvc.Close()
	fmt.Printf("  shared scans on: %d subscribers...", cfg.SharedSubscribers)
	out.SharedOn, err = serveSharedMode(c.Nodes[0], onSvc, true, cfg.SharedSubscribers)
	if err != nil {
		fmt.Println()
		return nil, err
	}
	fmt.Printf(" done in %v\n", out.SharedOn.DeliverWall.Round(time.Millisecond))
	fmt.Printf("  shared scans off: %d subscribers...", cfg.SharedSubscribers)
	out.SharedOff, err = serveSharedMode(c.Nodes[0], offSvc, false, cfg.SharedSubscribers)
	if err != nil {
		fmt.Println()
		return nil, err
	}
	fmt.Printf(" done in %v\n", out.SharedOff.DeliverWall.Round(time.Millisecond))
	return out, nil
}

// serveSeedTables defines and loads the static workload tables.
func serveSeedTables(nodes []*pier.Node) error {
	traffic := tuple.MustSchema("traffic", []tuple.Column{
		{Name: "node", Type: tuple.TString},
		{Name: "rate", Type: tuple.TFloat},
	}, "node")
	alerts := tuple.MustSchema("alerts", []tuple.Column{
		{Name: "node", Type: tuple.TString},
		{Name: "rule", Type: tuple.TInt},
		{Name: "hits", Type: tuple.TInt},
	}, "node", "rule")
	stream := tuple.MustSchema("stream", []tuple.Column{
		{Name: "src", Type: tuple.TString},
		{Name: "val", Type: tuple.TInt},
	}, "src")
	for _, nd := range nodes {
		for _, s := range []*tuple.Schema{traffic, alerts, stream} {
			if err := nd.DefineTable(s, time.Minute); err != nil {
				return err
			}
		}
	}
	for i, nd := range nodes {
		if err := nd.PublishLocal("traffic", tuple.Tuple{
			tuple.String(nd.Addr()), tuple.Float(float64(10 * (i + 1))),
		}); err != nil {
			return err
		}
		for r := 0; r < 2; r++ {
			if err := nd.PublishLocal("alerts", tuple.Tuple{
				tuple.String(nd.Addr()), tuple.Int(int64(r)), tuple.Int(int64(i + r)),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// serveFeed streams tuples into the stream table until stop closes.
func serveFeed(nd *pier.Node, stop <-chan struct{}) {
	for i := 0; ; i++ {
		select {
		case <-stop:
			return
		case <-time.After(20 * time.Millisecond):
		}
		_ = nd.PublishLocal("stream", tuple.Tuple{
			tuple.String(fmt.Sprintf("src-%d", i%4)), tuple.Int(int64(i)),
		})
	}
}

// serveStatements is the repeated one-shot workload (all cacheable, so
// steady state is parse-free).
var serveStatements = []string{
	"SELECT COUNT(*) FROM traffic",
	"SELECT SUM(rate) FROM traffic",
	"SELECT rule, COUNT(*) FROM alerts GROUP BY rule ORDER BY rule",
	"SELECT node, rate FROM traffic ORDER BY rate DESC LIMIT 5",
}

// serveTier drives one concurrency level: each client is one TCP
// connection issuing sequential queries from the shared statement set.
// Per-client query counts shrink as the tier widens so tiers finish in
// comparable wall time while the widest still has every client live at
// once.
func serveTier(addr string, clients int) (*ServeTier, error) {
	perClient := 200 / clients
	if perClient < 1 {
		perClient = 1
	}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		rejected  int
		firstErr  error
	)
	start := time.Now()
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			lats, rej, err := serveClient(addr, ci, perClient)
			mu.Lock()
			defer mu.Unlock()
			latencies = append(latencies, lats...)
			rejected += rej
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}(ci)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	wall := time.Since(start)
	tier := &ServeTier{
		Clients:  clients,
		Queries:  len(latencies),
		Rejected: rejected,
		Wall:     wall,
		P50:      percentileDur(latencies, 0.50),
		P95:      percentileDur(latencies, 0.95),
		P99:      percentileDur(latencies, 0.99),
	}
	if wall > 0 {
		tier.QPS = float64(len(latencies)) / wall.Seconds()
	}
	return tier, nil
}

// serveClient is one benchmark client: a real TCP connection speaking
// the pierd line protocol.
func serveClient(addr string, ci, queries int) ([]time.Duration, int, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, 0, err
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var lats []time.Duration
	rejected := 0
	for q := 0; q < queries; q++ {
		sql := serveStatements[(ci+q)%len(serveStatements)]
		start := time.Now()
		if err := enc.Encode(server.Request{ID: uint64(q + 1), Op: "query", SQL: sql}); err != nil {
			return lats, rejected, err
		}
		if !sc.Scan() {
			return lats, rejected, fmt.Errorf("connection closed mid-run: %v", sc.Err())
		}
		var resp server.Response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			return lats, rejected, err
		}
		switch {
		case resp.OK:
			lats = append(lats, time.Since(start))
		case resp.Reject != "":
			rejected++
		default:
			return lats, rejected, fmt.Errorf("query failed: %s", resp.Error)
		}
	}
	return lats, rejected, nil
}

// serveSharedMode attaches subscribers to one continuous statement and
// measures attach cost, underlying query count, and delivery.
func serveSharedMode(front *pier.Node, svc *engine.Service, shared bool, subscribers int) (ServeSharedMode, error) {
	const sql = "SELECT src, COUNT(*) FROM stream GROUP BY src WINDOW 500 ms SLIDE 500 ms"
	mode := ServeSharedMode{Shared: shared, Subscribers: subscribers}
	before := front.Metrics.QueriesCoordinated.Load()

	sess := svc.Open()
	defer sess.Close()
	subs := make([]*engine.Subscription, 0, subscribers)
	attachStart := time.Now()
	for i := 0; i < subscribers; i++ {
		sub, err := sess.Subscribe(context.Background(), sql)
		if err != nil {
			return mode, fmt.Errorf("subscriber %d: %w", i, err)
		}
		subs = append(subs, sub)
	}
	mode.AttachWall = time.Since(attachStart)
	mode.Coordinated = int(front.Metrics.QueriesCoordinated.Load() - before)

	deliverStart := time.Now()
	// A closed channel reaches every waiter (time.After would wake
	// exactly one of the hundred goroutines selecting on it).
	deadline := make(chan struct{})
	timer := time.AfterFunc(30*time.Second, func() { close(deadline) })
	defer timer.Stop()
	var wg sync.WaitGroup
	got := make([]bool, len(subs))
	for i, sub := range subs {
		wg.Add(1)
		go func(i int, sub *engine.Subscription) {
			defer wg.Done()
			for w := 0; w < 2; w++ {
				select {
				case _, ok := <-sub.Results():
					if !ok {
						return
					}
				case <-deadline:
					return
				}
			}
			got[i] = true
		}(i, sub)
	}
	wg.Wait()
	mode.DeliverWall = time.Since(deliverStart)
	for _, ok := range got {
		if ok {
			mode.Delivered++
		}
	}
	for _, sub := range subs {
		sub.Stop()
	}
	return mode, nil
}

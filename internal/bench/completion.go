package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/piertest"
)

// Completion: the deterministic-completion benchmark — the same
// one-shot workload on the same idle cluster, completed by distributed
// EOS tracking vs by the quiescence timer it replaced. The timer path
// cannot return before Quiet elapses no matter how small the query;
// EOS returns the moment every participant's ledger balances, so the
// gap is the fixed latency floor this PR removes.

// CompletionConfig parameterizes the completion experiment.
type CompletionConfig struct {
	// Sizes are the cluster sizes to measure (default 16, 32).
	Sizes []int
	// Seed drives the simulation (default 1).
	Seed int64
	// Queries per mode and size (default 20).
	Queries int
}

// CompletionMode aggregates one completion mechanism's runs.
type CompletionMode struct {
	Mode    string // "eos" or "quiet-timer"
	Queries int
	P50     time.Duration
	P95     time.Duration
	// Reasons counts completion reasons observed (the happy path is
	// all-"eos" for the EOS mode, all-"quiet-timeout" for the timer).
	Reasons map[string]int
}

// CompletionSize is one cluster size's EOS/timer comparison.
type CompletionSize struct {
	N       int
	EOS     CompletionMode
	Timer   CompletionMode
	Speedup float64 // timer p50 / eos p50
}

// CompletionResult is the whole experiment.
type CompletionResult struct {
	Sizes []CompletionSize
}

// completionStatements is the measured one-shot mix: a scan (rows
// channel only) and an aggregate (partials through collectors and
// relays — the drain-round path).
var completionStatements = []string{
	"SELECT node, rate FROM traffic",
	"SELECT SUM(rate) FROM traffic",
	"SELECT rule, COUNT(*) FROM alerts GROUP BY rule",
}

// Completion runs the EOS-vs-timer latency comparison.
func Completion(cfg CompletionConfig) (*CompletionResult, error) {
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = []int{16, 32}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Queries == 0 {
		cfg.Queries = 20
	}
	out := &CompletionResult{}
	for _, n := range cfg.Sizes {
		sz, err := completionSize(n, cfg.Seed, cfg.Queries)
		if err != nil {
			return nil, fmt.Errorf("n=%d: %w", n, err)
		}
		out.Sizes = append(out.Sizes, *sz)
	}
	return out, nil
}

func completionSize(n int, seed int64, queries int) (*CompletionSize, error) {
	c, err := piertest.New(piertest.Options{N: n, Seed: seed})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if err := serveSeedTables(c.Nodes); err != nil {
		return nil, err
	}

	sz := &CompletionSize{N: n}
	// piertest arms EOS (Members = N); measure it first, then flip the
	// very same cluster to the legacy quiet timer for the baseline.
	eos, err := completionMode(c, "eos", queries)
	if err != nil {
		return nil, err
	}
	sz.EOS = *eos
	for _, nd := range c.Nodes {
		nd.SetMembers(0)
	}
	timer, err := completionMode(c, "quiet-timer", queries)
	if err != nil {
		return nil, err
	}
	sz.Timer = *timer
	if sz.EOS.P50 > 0 {
		sz.Speedup = float64(sz.Timer.P50) / float64(sz.EOS.P50)
	}
	return sz, nil
}

func completionMode(c *piertest.Cluster, mode string, queries int) (*CompletionMode, error) {
	out := &CompletionMode{Mode: mode, Reasons: map[string]int{}}
	var lats []time.Duration
	for q := 0; q < queries; q++ {
		nd := c.Nodes[q%len(c.Nodes)]
		sql := completionStatements[q%len(completionStatements)]
		start := time.Now()
		res, err := nd.Query(context.Background(), sql)
		if err != nil {
			return nil, fmt.Errorf("%s query %d (%s): %w", mode, q, sql, err)
		}
		lats = append(lats, time.Since(start))
		out.Reasons[res.Reason]++
	}
	out.Queries = len(lats)
	out.P50 = percentileDur(lats, 0.50)
	out.P95 = percentileDur(lats, 0.95)
	return out, nil
}

package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/catalog"
	"repro/internal/piertest"
	"repro/internal/tuple"
)

// ---------------------------------------------------------------------------
// Distributed ANALYZE: measurement cost and optimizer steering
//
// The experiment answers two questions on a cluster with NO
// hand-declared statistics: (1) what does ANALYZE cost (latency and
// messages) per table size, and how close are the merged estimates to
// the truth; (2) do measured-and-gossiped statistics steer the
// cost-based optimizer to the same join order as a hand-declared
// baseline — and how much better is that plan than the one coarse
// defaults pick.

// AnalyzeTableCost is one table's ANALYZE cost/accuracy point.
type AnalyzeTableCost struct {
	Table    string
	TrueRows int64
	EstRows  int64
	// Latency is the wall time of analyzing just this table;
	// Msgs/Bytes the network traffic it generated.
	Latency time.Duration
	Msgs    uint64
	Bytes   uint64
}

// WithinFactor reports the worse of est/true and true/est.
func (c AnalyzeTableCost) WithinFactor() float64 {
	if c.TrueRows == 0 || c.EstRows == 0 {
		return 1e9
	}
	f := float64(c.EstRows) / float64(c.TrueRows)
	if f < 1 {
		f = 1 / f
	}
	return f
}

// AnalyzeOutcome is the whole experiment's result.
type AnalyzeOutcome struct {
	Costs []AnalyzeTableCost
	// Plan shapes (join order + per-stage strategies) under the three
	// statistics regimes.
	DefaultsPlan string
	DeclaredPlan string
	MeasuredPlan string
	// GossipSource is the stats provenance at the node that ran the
	// measured query ("gossiped": it never issued ANALYZE itself).
	GossipSource string
	// PlansMatch: measured-stats plan == hand-declared-stats plan.
	PlansMatch bool
	// RowsMatch: all three runs returned byte-identical rows (and
	// matched the single-node baseline executor).
	RowsMatch bool
	// Result-row count and per-regime cost of the query. Msgs are raw
	// simulated-network sends during the run (including background
	// maintenance and gossip); Work is the engine's own count of
	// query data movement (rehashed join tuples + fetch probes), the
	// noise-free plan-quality measure.
	Rows         int
	DefaultsMsgs uint64
	DeclaredMsgs uint64
	MeasuredMsgs uint64
	DefaultsWork uint64
	DeclaredWork uint64
	MeasuredWork uint64
	// Per-regime baseline agreement (RowsMatch is their conjunction).
	DefaultsRowsMatch bool
	DeclaredRowsMatch bool
	MeasuredRowsMatch bool
}

// planShape compresses an EXPLAIN tree to "t1>t2>t3 [strat0,strat1]"
// — the join order and per-stage strategies, with the stats
// annotations (which legitimately differ by provenance) dropped.
func planShape(explain string) string {
	var tables, strats []string
	stratAt := map[int]string{}
	for _, line := range strings.Split(explain, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "Scan ") {
			tables = append(tables, strings.Fields(line)[1])
		}
		if strings.HasPrefix(line, "Join#") {
			var stage int
			var strat string
			if _, err := fmt.Sscanf(line, "Join#%d (%s", &stage, &strat); err == nil {
				stratAt[stage] = strings.TrimSuffix(strat, ")")
			}
		}
	}
	for s := 0; s < len(stratAt); s++ {
		strats = append(strats, stratAt[s])
	}
	return strings.Join(tables, ">") + " [" + strings.Join(strats, ",") + "]"
}

// AnalyzeStats runs the distributed-ANALYZE experiment on an n-node
// simulated network: a 3-table workload (orders local; users and
// items in the DHT, keyed on their join columns) sized so that
// accurate statistics flip the join order away from what coarse
// defaults pick. nUIDs controls user cardinality (two user rows per
// uid, so the users join expands), nItems the items table size.
func AnalyzeStats(n, ordersPerNode, nUIDs, nItems int, seed int64) (*AnalyzeOutcome, error) {
	if n == 0 {
		n = 32
	}
	if ordersPerNode == 0 {
		ordersPerNode = 8
	}
	if nUIDs == 0 {
		nUIDs = 50
	}
	if nItems == 0 {
		nItems = 5000
	}
	usersSchema := tuple.MustSchema("users", []tuple.Column{
		{Name: "uid", Type: tuple.TInt},
		{Name: "name", Type: tuple.TString},
	}, "uid")
	ordersSchema := tuple.MustSchema("orders", []tuple.Column{
		{Name: "node", Type: tuple.TString},
		{Name: "oid", Type: tuple.TInt},
		{Name: "uid", Type: tuple.TInt},
		{Name: "item", Type: tuple.TInt},
	}, "node", "oid")
	itemsSchema := tuple.MustSchema("items", []tuple.Column{
		{Name: "item", Type: tuple.TInt},
		{Name: "price", Type: tuple.TFloat},
	}, "item")

	cfg := piertest.FastConfig()
	// The fast-timer default republishes every holder's items twice a
	// second — with thousands of DHT items that background repair
	// traffic dwarfs everything being measured. Use a repair period
	// proportionate to the workload (items carry 5-minute TTLs).
	cfg.DHT.RepublishEvery = 5 * time.Second
	cluster, err := piertest.New(piertest.Options{N: n, Seed: seed, NodeCfg: &cfg})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	// Every node answers the baseline's pull protocol (the reference
	// executor collects whole tables through it).
	var bases []*baseline.Centralized
	for _, nd := range cluster.Nodes {
		bases = append(bases, baseline.NewCentralized(nd))
		for _, s := range []*tuple.Schema{usersSchema, ordersSchema, itemsSchema} {
			if err := nd.DefineTable(s, 5*time.Minute); err != nil {
				return nil, err
			}
		}
	}
	// Two user rows per uid (the users join expands); items large.
	for u := 0; u < nUIDs; u++ {
		for copyN := 0; copyN < 2; copyN++ {
			nd := cluster.Nodes[(2*u+copyN)%n]
			if err := nd.Publish("users", tuple.Tuple{
				tuple.Int(int64(u)), tuple.String(fmt.Sprintf("user-%d-%d", u, copyN)),
			}); err != nil {
				return nil, err
			}
		}
	}
	for it := 0; it < nItems; it++ {
		nd := cluster.Nodes[it%n]
		if err := nd.Publish("items", tuple.Tuple{
			tuple.Int(int64(it)), tuple.Float(float64(it) + 0.5),
		}); err != nil {
			return nil, err
		}
	}
	trueOrders := int64(n * ordersPerNode)
	for i, nd := range cluster.Nodes {
		for j := 0; j < ordersPerNode; j++ {
			oid := i*ordersPerNode + j
			if err := nd.PublishLocal("orders", tuple.Tuple{
				tuple.String(nd.Addr()), tuple.Int(int64(oid)),
				tuple.Int(int64(oid % nUIDs)), tuple.Int(int64(oid % nItems)),
			}); err != nil {
				return nil, err
			}
		}
	}
	trueRows := map[string]int64{"orders": trueOrders, "users": int64(2 * nUIDs), "items": int64(nItems)}
	if err := waitForCount(cluster, "table:users", 2*nUIDs, 20*time.Second); err != nil {
		return nil, err
	}
	if err := waitForCount(cluster, "table:items", nItems, 20*time.Second); err != nil {
		return nil, err
	}

	const sql = "SELECT o.oid, u.name, i.price FROM orders o JOIN users u ON o.uid = u.uid JOIN items i ON o.item = i.item"
	nodeDeclared, nodeAnalyze, nodeGossip := cluster.Nodes[0], cluster.Nodes[1], cluster.Nodes[2]

	ref, err := bases[0].QuerySQL(context.Background(), sql, 300*time.Millisecond)
	if err != nil {
		return nil, fmt.Errorf("bench: baseline executor: %w", err)
	}
	refDigest := rowsDigest(ref.Rows)

	out := &AnalyzeOutcome{}

	// 1. Defaults: query before any statistics exist anywhere.
	defaultsPlanText, err := nodeGossip.Explain(sql)
	if err != nil {
		return nil, err
	}
	out.DefaultsPlan = planShape(defaultsPlanText)
	cluster.Net.ResetStats()
	work0 := queryWork(cluster)
	resDefaults, err := nodeGossip.Query(context.Background(), sql)
	if err != nil {
		return nil, fmt.Errorf("bench: defaults query: %w", err)
	}
	out.DefaultsMsgs = cluster.Net.Stats().Sent
	out.DefaultsWork = queryWork(cluster) - work0

	// 2. Hand-declared truth on one node only (the baseline an
	// operator would declare).
	for tbl, st := range map[string]catalog.TableStats{
		"orders": {Rows: trueOrders, Distinct: map[string]int64{
			"node": int64(n), "oid": trueOrders,
			"uid": min(trueOrders, int64(nUIDs)), "item": min(trueOrders, int64(nItems))}},
		"users": {Rows: int64(2 * nUIDs), Distinct: map[string]int64{"uid": int64(nUIDs), "name": int64(2 * nUIDs)}},
		"items": {Rows: int64(nItems), Distinct: map[string]int64{"item": int64(nItems), "price": int64(nItems)}},
	} {
		if err := nodeDeclared.SetTableStats(tbl, st); err != nil {
			return nil, err
		}
	}
	declaredPlanText, err := nodeDeclared.Explain(sql)
	if err != nil {
		return nil, err
	}
	out.DeclaredPlan = planShape(declaredPlanText)
	cluster.Net.ResetStats()
	work0 = queryWork(cluster)
	resDeclared, err := nodeDeclared.Query(context.Background(), sql)
	if err != nil {
		return nil, fmt.Errorf("bench: declared query: %w", err)
	}
	out.DeclaredMsgs = cluster.Net.Stats().Sent
	out.DeclaredWork = queryWork(cluster) - work0

	// 3. ANALYZE per table from a node with no declared stats —
	// latency and message cost scale with the table being measured.
	for _, tbl := range []string{"orders", "users", "items"} {
		cluster.Net.ResetStats()
		t0 := time.Now()
		ares, err := nodeAnalyze.Analyze(context.Background(), tbl)
		if err != nil {
			return nil, fmt.Errorf("bench: analyze %s: %w", tbl, err)
		}
		lat := time.Since(t0)
		st := cluster.Net.Stats()
		if len(ares.Tables) != 1 {
			return nil, fmt.Errorf("bench: analyze %s returned %d tables", tbl, len(ares.Tables))
		}
		out.Costs = append(out.Costs, AnalyzeTableCost{
			Table: tbl, TrueRows: trueRows[tbl], EstRows: ares.Tables[0].Rows,
			Latency: lat, Msgs: st.Sent, Bytes: st.BytesSent,
		})
	}
	for _, c := range out.Costs {
		if c.WithinFactor() > 2 {
			return nil, fmt.Errorf("bench: analyze %s estimated %d rows, true %d (beyond 2x)",
				c.Table, c.EstRows, c.TrueRows)
		}
	}

	// 4. Gossip: a third node that never ran ANALYZE converges to the
	// measured stats and picks the same plan as the declared baseline.
	gossipDeadline := time.Now().Add(30 * time.Second)
	for {
		ready := true
		for _, tbl := range []string{"orders", "users", "items"} {
			st, src, _ := nodeGossip.Catalog().StatsInfo(tbl)
			if src == catalog.StatsDefault || st.Rows == 0 {
				ready = false
			}
		}
		if ready {
			break
		}
		if time.Now().After(gossipDeadline) {
			return nil, fmt.Errorf("bench: gossip did not converge within 30s")
		}
		time.Sleep(50 * time.Millisecond)
	}
	_, src, _ := nodeGossip.Catalog().StatsInfo("items")
	out.GossipSource = src.String()
	measuredPlanText, err := nodeGossip.Explain(sql)
	if err != nil {
		return nil, err
	}
	out.MeasuredPlan = planShape(measuredPlanText)
	cluster.Net.ResetStats()
	work0 = queryWork(cluster)
	resMeasured, err := nodeGossip.Query(context.Background(), sql)
	if err != nil {
		return nil, fmt.Errorf("bench: measured query: %w", err)
	}
	out.MeasuredMsgs = cluster.Net.Stats().Sent
	out.MeasuredWork = queryWork(cluster) - work0

	out.Rows = len(resMeasured.Rows)
	out.PlansMatch = out.MeasuredPlan == out.DeclaredPlan
	out.DefaultsRowsMatch = rowsDigest(resDefaults.Rows) == refDigest
	out.DeclaredRowsMatch = rowsDigest(resDeclared.Rows) == refDigest
	out.MeasuredRowsMatch = rowsDigest(resMeasured.Rows) == refDigest
	out.RowsMatch = out.DefaultsRowsMatch && out.DeclaredRowsMatch && out.MeasuredRowsMatch
	return out, nil
}

// queryWork sums the engine's own data-movement counters across the
// cluster: join tuples rehashed plus fetch-matches probes — the cost
// the optimizer's unit ("tuples put on the network") actually prices.
func queryWork(cluster *piertest.Cluster) uint64 {
	var total uint64
	for _, nd := range cluster.Nodes {
		total += nd.Metrics.JoinTuplesRehashed.Load() + nd.Metrics.FetchProbes.Load()
	}
	return total
}

// waitForCount polls until the cluster-wide primary item count of ns
// reaches want.
func waitForCount(cluster *piertest.Cluster, ns string, want int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		total := 0
		for _, nd := range cluster.Nodes {
			total += nd.Store().Count(ns)
		}
		if total >= want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("bench: %s holds %d/%d items after %v", ns, total, want, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

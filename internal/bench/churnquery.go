package bench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/pier"
	"repro/internal/piertest"
	"repro/internal/simnet"
	"repro/internal/tuple"
)

// ChurnQuery: the robustness experiment — one-shot queries running
// while the cluster loses and regains members under a seeded churn
// script. Measures what the paper's relaxed-consistency story
// promises: queries keep completing (without waiting out the
// quiescence timer), and the result honestly reports which fraction
// of the table partitions it reflects. The zero-churn cell of each
// size is the latency/coverage baseline the churned cells compare
// against.

// ChurnQueryConfig parameterizes the experiment.
type ChurnQueryConfig struct {
	// N pins a single cluster size (0 = the default size matrix,
	// which includes a ≥1k-node cell).
	N int
	// Seed drives both the simulation and the churn script.
	Seed int64
	// Queries per cell (0 = default, scaled down for huge cells).
	Queries int
	// Levels selects churn levels by name ("none", "low", "high");
	// empty = all three.
	Levels []string
}

// ChurnQueryCell is one (size, churn level) measurement.
type ChurnQueryCell struct {
	N     int
	Level string
	// CrashPerMin is the scripted per-node crash rate.
	CrashPerMin float64
	Queries     int
	// Succeeded counts queries that returned a result at all.
	Succeeded int
	// Reasons counts completion reasons over the succeeded queries.
	Reasons map[string]int
	// CoverageMean / CoverageMin summarize the reported coverage
	// distribution over succeeded queries (1.0 = full).
	CoverageMean float64
	CoverageMin  float64
	P50, P95     time.Duration
}

// ChurnQueryResult is the whole experiment.
type ChurnQueryResult struct {
	Cells []ChurnQueryCell
}

// churnLevel is a named churn intensity.
type churnLevel struct {
	name  string
	rates simnet.ChurnRates
}

func churnLevels() []churnLevel {
	return []churnLevel{
		{name: "none"},
		{name: "low", rates: simnet.ChurnRates{
			CrashPerMin: 0.05, // 5% of nodes flap per minute
			DownForMin:  time.Second,
			DownForMax:  3 * time.Second,
		}},
		{name: "high", rates: simnet.ChurnRates{
			CrashPerMin:     0.20, // 20%/min, plus partitions and storms
			DownForMin:      time.Second,
			DownForMax:      3 * time.Second,
			PartitionPerMin: 1,
			HealAfter:       time.Second,
			StormPerMin:     1,
			StormFactor:     4,
			StormFor:        500 * time.Millisecond,
		}},
	}
}

// churnNodeCfg tunes the simulation-scale config for the cell size:
// big rings get slower protocol timers (less background traffic per
// simulated second) and a longer query-life bound.
func churnNodeCfg(n int) pier.Config {
	cfg := piertest.FastConfig()
	cfg.HeartbeatEvery = 50 * time.Millisecond
	if n >= 512 {
		cfg.Chord.StabilizeEvery = 50 * time.Millisecond
		cfg.Chord.FixFingersEvery = 10 * time.Millisecond
		cfg.Chord.CheckPredEvery = 100 * time.Millisecond
		cfg.Quiet = 1200 * time.Millisecond
		cfg.HeartbeatEvery = 150 * time.Millisecond
		// On a single-core host a 1k-goroutine-node process sees
		// scheduling delays well past the default 3-beat window;
		// widen it so suspicion means churn, not CPU contention.
		cfg.SuspectAfter = 8
		cfg.MaxQueryLife = 30 * time.Second
	}
	return cfg
}

// ChurnQuery runs the query-under-churn matrix.
func ChurnQuery(cfg ChurnQueryConfig) (*ChurnQueryResult, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	sizes := []int{256, 1024}
	if cfg.N > 0 {
		sizes = []int{cfg.N}
	}
	want := make(map[string]bool)
	for _, l := range cfg.Levels {
		want[l] = true
	}
	out := &ChurnQueryResult{}
	for _, n := range sizes {
		for _, lvl := range churnLevels() {
			if len(want) > 0 && !want[lvl.name] {
				continue
			}
			if n >= 1024 && lvl.name != "low" && cfg.N == 0 {
				// The huge cell exists to prove scale, not to sweep
				// every level: one churned row is enough.
				continue
			}
			queries := cfg.Queries
			if queries == 0 {
				queries = 10
				if n >= 1024 {
					queries = 6
				}
			}
			cell, err := churnQueryCell(n, lvl, queries, cfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("n=%d level=%s: %w", n, lvl.name, err)
			}
			out.Cells = append(out.Cells, *cell)
		}
	}
	return out, nil
}

func churnQueryCell(n int, lvl churnLevel, queries int, seed int64) (*ChurnQueryCell, error) {
	c, err := piertest.New(piertest.Options{
		N: n, Seed: seed,
		NodeCfg:         cfgPtr(churnNodeCfg(n)),
		ConvergeTimeout: 5 * time.Minute,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if err := churnSeedTraffic(c.Nodes); err != nil {
		return nil, err
	}

	// Churn everything except the coordinator: a dead coordinator is a
	// failed client, not a degraded query — different experiment.
	var churner *simnet.Churner
	if lvl.rates.CrashPerMin > 0 || lvl.rates.PartitionPerMin > 0 || lvl.rates.StormPerMin > 0 {
		targets := make([]string, 0, len(c.Nodes)-1)
		for _, nd := range c.Nodes[1:] {
			targets = append(targets, nd.Addr())
		}
		script := simnet.GenerateScript(targets, 2*time.Minute, lvl.rates, seed)
		churner = simnet.NewChurner(c.Net, script)
		churner.Start()
		defer func() {
			churner.Stop()
			c.Net.Heal()
			c.Net.SetLatencyFactor(1)
		}()
	}

	cell := &ChurnQueryCell{
		N: n, Level: lvl.name, CrashPerMin: lvl.rates.CrashPerMin,
		Queries: queries, Reasons: map[string]int{}, CoverageMin: 1,
	}
	// Pace the queries across the script's timeline: back-to-back
	// runs would finish in well under a second of simulated churn and
	// measure an effectively stable network. ~1.5s apart, a 10-query
	// cell spans enough scripted crash/rejoin cycles for the coverage
	// distribution to mean something.
	interval := 1500 * time.Millisecond
	if lvl.rates.CrashPerMin == 0 {
		interval = 0 // the baseline cell has nothing to wait for
	}
	cellStart := time.Now()
	var lats []time.Duration
	var covSum float64
	coord := c.Nodes[0]
	for q := 0; q < queries; q++ {
		if interval > 0 {
			if wait := time.Until(cellStart.Add(time.Duration(q) * interval)); wait > 0 {
				time.Sleep(wait)
			}
		}
		start := time.Now()
		res, err := coord.Query(context.Background(), "SELECT node, rate FROM traffic")
		if err != nil {
			continue // a lost broadcast under churn is a failed query
		}
		cell.Succeeded++
		cell.Reasons[res.Reason]++
		lats = append(lats, time.Since(start))
		covSum += res.Coverage
		if res.Coverage < cell.CoverageMin {
			cell.CoverageMin = res.Coverage
		}
	}
	if cell.Succeeded > 0 {
		cell.CoverageMean = covSum / float64(cell.Succeeded)
		cell.P50 = percentileDur(lats, 0.50)
		cell.P95 = percentileDur(lats, 0.95)
	} else {
		cell.CoverageMin = 0
	}
	return cell, nil
}

// churnSeedTraffic defines the traffic table everywhere and loads one
// local row per node — coverage then counts served partitions exactly.
func churnSeedTraffic(nodes []*pier.Node) error {
	traffic := tuple.MustSchema("traffic", []tuple.Column{
		{Name: "node", Type: tuple.TString},
		{Name: "rate", Type: tuple.TFloat},
	}, "node")
	for _, nd := range nodes {
		if err := nd.DefineTable(traffic, 10*time.Minute); err != nil {
			return err
		}
	}
	for i, nd := range nodes {
		if err := nd.PublishLocal("traffic", tuple.Tuple{
			tuple.String(nd.Addr()), tuple.Float(float64(i + 1)),
		}); err != nil {
			return err
		}
	}
	return nil
}

func cfgPtr(cfg pier.Config) *pier.Config { return &cfg }

// ReasonHistogram renders a completion-reason histogram
// deterministically ("churn-degraded:3 eos:7").
func ReasonHistogram(reasons map[string]int) string {
	keys := make([]string, 0, len(reasons))
	for k := range reasons {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s:%d", k, reasons[k])
	}
	return out
}

// Package obs is the node-wide observability layer: a lock-free
// metrics registry (counters, gauges, bounded-bucket histograms) with
// a stable naming scheme and Prometheus text rendering, per-query
// distributed trace spans, and a fixed-size structured event log.
//
// The engine that PIER demonstrates monitors networks; obs makes the
// engine itself monitorable. Every layer (rpc, dht, batch, spill,
// engine, pier) registers its counters into one per-node Registry at
// construction, hot paths hold direct handles (one atomic add per
// observation), and the whole surface exports through pierd's
// `metrics`, `trace`, and `events` requests.
//
// Naming scheme: `<layer>_<what>_<unit-or-total>` in Prometheus
// conventions, with dimensions folded into the series name as
// `name{key="value"}` via L — e.g. `rpc_calls_total{method="pier.rows"}`,
// `batch_flushes_total{reason="timer"}`, `engine_queue_wait_ns`.
// Series names are stable API: internal/obs's golden test pins the
// static set registered by a node + engine.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotone lock-free counter. The zero value is usable,
// so structs can embed Counter fields by value (pier.Metrics keeps its
// field API) and register pointers to them afterwards.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load reads the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a lock-free instantaneous value (may go down).
type Gauge struct{ v atomic.Int64 }

// Set stores the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load reads the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Sample is one point of a registry snapshot. Histograms expand into
// `_bucket{le=...}` / `_sum` / `_count` samples.
type Sample struct {
	Name  string
	Value float64
}

// Registry holds one node's metric series. All methods are safe for
// concurrent use and nil-safe: a nil registry hands out working (but
// unregistered, never exported) instruments, so instrumented code
// never branches on whether observability is attached.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() float64
}

// New builds an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() float64),
	}
}

// L folds label dimensions into a series name: L("rpc_calls_total",
// "method", "pier.rows") → `rpc_calls_total{method="pier.rows"}`.
// Pairs render in the order given; callers keep them stable.
func L(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(kv[i+1])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns (creating if needed) the counter registered under
// name. On a nil registry it returns a working unregistered counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return new(Counter)
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge registered under name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram registered
// under name. Bounds apply only at creation; see NewHistogram.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return NewHistogram(bounds)
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// RegisterCounter attaches an existing counter under name (how value
// structs like pier.Metrics join the registry without changing their
// field API). Re-registering a name replaces the previous instrument.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] = c
	r.mu.Unlock()
}

// RegisterFunc exports a read-time computed value (queue depths, cache
// hit counters owned elsewhere). fn must be safe for concurrent use.
func (r *Registry) RegisterFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// Names lists every registered series name, sorted. Histograms appear
// once under their base name.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.funcs))
	for n := range r.counters {
		out = append(out, n)
	}
	for n := range r.gauges {
		out = append(out, n)
	}
	for n := range r.hists {
		out = append(out, n)
	}
	for n := range r.funcs {
		out = append(out, n)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Snapshot captures every series at one point in time, sorted by
// sample name. Histograms expand into cumulative buckets, sum, and
// count, Prometheus-style.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]Sample, 0, len(r.counters)+len(r.gauges)+4*len(r.hists)+len(r.funcs))
	for n, c := range r.counters {
		out = append(out, Sample{Name: n, Value: float64(c.Load())})
	}
	for n, g := range r.gauges {
		out = append(out, Sample{Name: n, Value: float64(g.Load())})
	}
	for n, fn := range r.funcs {
		out = append(out, Sample{Name: n, Value: fn()})
	}
	for n, h := range r.hists {
		out = append(out, h.samples(n)...)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SnapshotMap is Snapshot as a name → value map (the pierd `metrics`
// JSON body).
func (r *Registry) SnapshotMap() map[string]float64 {
	s := r.Snapshot()
	if s == nil {
		return nil
	}
	m := make(map[string]float64, len(s))
	for _, sm := range s {
		m[sm.Name] = sm.Value
	}
	return m
}

// RenderProm renders the snapshot in Prometheus text exposition
// format (one `name value` line per sample, sorted).
func (r *Registry) RenderProm() string {
	samples := r.Snapshot()
	var b strings.Builder
	b.Grow(64 * len(samples))
	for _, s := range samples {
		if s.Value == float64(uint64(s.Value)) {
			fmt.Fprintf(&b, "%s %d\n", s.Name, uint64(s.Value))
		} else {
			fmt.Fprintf(&b, "%s %g\n", s.Name, s.Value)
		}
	}
	return b.String()
}

// suffixed inserts a suffix before a name's label block (if any):
// suffixed(`lat{method="x"}`, "_sum") → `lat_sum{method="x"}`.
func suffixed(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// spliceLabel appends one label pair to a (possibly already labeled)
// series name under a suffix: spliceLabel("lat{method=\"x\"}",
// "_bucket", "le", "250") → `lat_bucket{method="x",le="250"}`.
func spliceLabel(name, suffix, key, val string) string {
	base, labels := name, ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base = name[:i]
		labels = strings.TrimSuffix(name[i+1:], "}")
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteString(suffix)
	b.WriteByte('{')
	if labels != "" {
		b.WriteString(labels)
		b.WriteByte(',')
	}
	b.WriteString(key)
	b.WriteString(`="`)
	b.WriteString(val)
	b.WriteString(`"}`)
	return b.String()
}

package obs

import (
	"fmt"
	"sync"
	"time"
)

// Event severities.
const (
	SevInfo = "info"
	SevWarn = "warn"
)

// Event kinds emitted across the stack.
const (
	EvQueryAdmitted  = "query-admitted"
	EvQueryCompleted = "query-completed"
	EvQueryDegraded  = "query-degraded"
	EvSlowQuery      = "slow-query"
	EvSuspectRaised  = "suspicion-raised"
	EvSuspectCleared = "suspicion-cleared"
	EvSpillStarted   = "spill-started"
	EvAutoAnalyze    = "auto-analyze"
)

// Event is one structured entry in the node's event ring.
type Event struct {
	Time     time.Time `json:"time"`
	Severity string    `json:"severity"`
	Kind     string    `json:"kind"`
	Query    uint64    `json:"query,omitempty"`
	Msg      string    `json:"msg"`
}

// EventLog is a fixed-size structured ring of recent events. Writes
// never block or allocate beyond the ring; old entries are overwritten
// oldest-first. All methods are nil-safe.
type EventLog struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64
}

// NewEventLog builds a ring holding the most recent capacity events.
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = 256
	}
	return &EventLog{buf: make([]Event, 0, capacity)}
}

// Emit appends an event; format args are applied to msg when present.
func (l *EventLog) Emit(severity, kind string, query uint64, msg string, args ...any) {
	if l == nil {
		return
	}
	if len(args) > 0 {
		msg = fmt.Sprintf(msg, args...)
	}
	ev := Event{Time: time.Now(), Severity: severity, Kind: kind, Query: query, Msg: msg}
	l.mu.Lock()
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, ev)
	} else {
		l.buf[l.next] = ev
	}
	l.next = (l.next + 1) % cap(l.buf)
	l.total++
	l.mu.Unlock()
}

// Total reports how many events were ever emitted (including those
// the ring has since overwritten).
func (l *EventLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot copies the retained events, oldest first.
func (l *EventLog) Snapshot() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.buf))
	if len(l.buf) < cap(l.buf) {
		out = append(out, l.buf...)
		return out
	}
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestRegistryConcurrency hammers every instrument kind from many
// goroutines while snapshots run — meaningful under -race, which CI
// enables for this package.
func TestRegistryConcurrency(t *testing.T) {
	reg := New()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("test_ops_total")
			g := reg.Gauge("test_depth")
			h := reg.Histogram("test_lat_ns", LatencyBuckets)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(uint64(i) * 1000)
				reg.Counter(L("test_labeled_total", "k", "v")).Inc()
			}
		}()
	}
	// Concurrent readers.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				reg.Snapshot()
				reg.RenderProm()
				reg.Names()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("test_ops_total").Load(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Counter(L("test_labeled_total", "k", "v")).Load(); got != workers*perWorker {
		t.Fatalf("labeled counter = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Histogram("test_lat_ns", nil).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestNilRegistry verifies the nil-safety contract: nil registries,
// span buffers, and event logs hand out working no-op instruments.
func TestNilRegistry(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Inc()
	reg.Gauge("y").Set(3)
	reg.Histogram("z", SizeBuckets).Observe(10)
	reg.RegisterCounter("w", new(Counter))
	reg.RegisterFunc("f", func() float64 { return 1 })
	if reg.Snapshot() != nil || reg.Names() != nil {
		t.Fatal("nil registry must snapshot to nil")
	}
	var buf *SpanBuf
	buf.End(buf.Start("s"))
	buf.CloseOpen()
	if buf.Snapshot() != nil {
		t.Fatal("nil span buffer must snapshot to nil")
	}
	var log *EventLog
	log.Emit(SevInfo, EvQueryAdmitted, 1, "x")
	if log.Snapshot() != nil || log.Total() != 0 {
		t.Fatal("nil event log must be empty")
	}
}

// TestHistogramBucketBoundaries pins the le-boundary semantics: a
// value equal to a bound lands in that bound's bucket (Prometheus
// `le` is inclusive), one past it in the next, and values past the
// last bound in +Inf only.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]uint64{10, 100, 1000})
	h.Observe(10)   // le=10
	h.Observe(11)   // le=100
	h.Observe(100)  // le=100
	h.Observe(1000) // le=1000
	h.Observe(1001) // +Inf
	samples := h.samples("lat")
	want := map[string]float64{
		`lat_bucket{le="10"}`:   1,
		`lat_bucket{le="100"}`:  3, // cumulative
		`lat_bucket{le="1000"}`: 4,
		`lat_bucket{le="+Inf"}`: 5,
		"lat_sum":               10 + 11 + 100 + 1000 + 1001,
		"lat_count":             5,
	}
	got := make(map[string]float64, len(samples))
	for _, s := range samples {
		got[s.Name] = s.Value
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %v, want %v (all: %v)", name, got[name], v, got)
		}
	}
}

// TestHistogramLabeledExpansion checks label splicing: a labeled
// histogram's buckets must fold le into the existing label set.
func TestHistogramLabeledExpansion(t *testing.T) {
	reg := New()
	reg.Histogram(L("rpc_latency_ns", "method", "pier.rows"), []uint64{100}).Observe(50)
	m := reg.SnapshotMap()
	if m[`rpc_latency_ns_bucket{method="pier.rows",le="100"}`] != 1 {
		t.Fatalf("spliced bucket missing: %v", m)
	}
	if m[`rpc_latency_ns_count{method="pier.rows"}`] != 1 {
		t.Fatalf("labeled _count missing: %v", m)
	}
}

func TestRenderProm(t *testing.T) {
	reg := New()
	reg.Counter("b_total").Add(2)
	reg.Gauge("a_depth").Set(-3)
	reg.RegisterFunc("c_ratio", func() float64 { return 0.5 })
	text := reg.RenderProm()
	want := "a_depth -3\nb_total 2\nc_ratio 0.5\n"
	if text != want {
		t.Fatalf("RenderProm:\n%q\nwant:\n%q", text, want)
	}
}

func TestEventRingWraparound(t *testing.T) {
	log := NewEventLog(4)
	for i := 0; i < 10; i++ {
		log.Emit(SevInfo, EvQueryCompleted, uint64(i), "event %d", i)
	}
	if log.Total() != 10 {
		t.Fatalf("total = %d, want 10", log.Total())
	}
	events := log.Snapshot()
	if len(events) != 4 {
		t.Fatalf("ring retained %d events, want 4", len(events))
	}
	for i, ev := range events {
		if want := uint64(6 + i); ev.Query != want {
			t.Fatalf("event %d is query %d, want %d (oldest-first)", i, ev.Query, want)
		}
	}
}

func TestSpanBufRootParenting(t *testing.T) {
	b := NewSpanBuf("coord", 0)
	root := b.Root("query")
	child := b.Start("disseminate")
	grand := b.StartChild(child, "inner")
	b.End(grand)
	b.End(child)
	b.EndDetail(root, "reason=eos")
	spans := b.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans", len(spans))
	}
	byName := make(map[string]Span)
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["query"].Parent != 0 {
		t.Fatalf("root has parent %d", byName["query"].Parent)
	}
	if byName["disseminate"].Parent != root {
		t.Fatal("Start after Root must parent on the root span")
	}
	if byName["inner"].Parent != child {
		t.Fatal("StartChild must honor the explicit parent")
	}
	if byName["query"].Detail != "reason=eos" {
		t.Fatalf("detail %q", byName["query"].Detail)
	}
	for _, s := range spans {
		if s.End == 0 {
			t.Fatalf("span %s still open", s.Name)
		}
	}
}

func TestSpanBufCloseOpen(t *testing.T) {
	b := NewSpanBuf("n", 77)
	b.Start("scan")
	b.Start("ship")
	b.CloseOpen()
	for _, s := range b.Snapshot() {
		if s.End == 0 {
			t.Fatalf("span %s not closed by CloseOpen", s.Name)
		}
		if s.Parent != 77 {
			t.Fatalf("span %s parent %d, want the disseminated root 77", s.Name, s.Parent)
		}
	}
}

func TestSpanEncodeDecodeRoundTrip(t *testing.T) {
	b := NewSpanBuf("node3", 9)
	b.EndDetail(b.Start("scan"), "rows=12")
	b.Add("drain.r1", time.Unix(0, 100), time.Unix(0, 200), "")
	in := b.Snapshot()
	var w wire.Writer
	EncodeSpans(&w, in)
	out, err := DecodeSpans(wire.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d spans, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("span %d: %+v != %+v", i, in[i], out[i])
		}
	}
}

// TestAssembleTraceSkew verifies clock-skew normalization: a remote
// node whose clock is far ahead has its spans translated as a block so
// its earliest span aligns with the coordinator's root start, while
// intra-node relative timing is preserved exactly.
func TestAssembleTraceSkew(t *testing.T) {
	const coordStart = 1_000_000
	byNode := map[string][]Span{
		"coord": {
			{ID: 1, Node: "coord", Name: "query", Start: coordStart, End: coordStart + 500},
		},
		"remote": {
			// Remote clock is ~1h ahead of the coordinator's.
			{ID: 2, Node: "remote", Name: "scan", Start: 3_600_001_000_000, End: 3_600_001_000_100},
			{ID: 3, Node: "remote", Name: "ship", Start: 3_600_001_000_040, End: 3_600_001_000_090},
		},
	}
	tr := AssembleTrace(7, 1, "coord", byNode)
	if got := tr.Nodes(); len(got) != 2 {
		t.Fatalf("nodes %v", got)
	}
	var scan, ship Span
	for _, s := range tr.Spans {
		switch s.Name {
		case "scan":
			scan = s
		case "ship":
			ship = s
		}
	}
	if scan.Start != coordStart {
		t.Fatalf("remote earliest span starts at %d, want anchored to coordinator start %d", scan.Start, coordStart)
	}
	if ship.Start-scan.Start != 40 || ship.End-ship.Start != 50 {
		t.Fatal("relative timing within the remote node must be preserved")
	}
	if tr.Spans[0].Start > tr.Spans[len(tr.Spans)-1].Start {
		t.Fatal("spans must sort by start time")
	}
	text := tr.Render()
	if !strings.Contains(text, "(coordinator)") || !strings.Contains(text, "scan") {
		t.Fatalf("render:\n%s", text)
	}
	if !strings.Contains(string(tr.JSON()), `"coordinator":"coord"`) {
		t.Fatalf("json: %s", tr.JSON())
	}
}

func TestSpliceLabel(t *testing.T) {
	if got := spliceLabel("lat", "_bucket", "le", "5"); got != `lat_bucket{le="5"}` {
		t.Fatal(got)
	}
	if got := spliceLabel(`lat{method="x"}`, "_bucket", "le", "5"); got != `lat_bucket{method="x",le="5"}` {
		t.Fatal(got)
	}
}

func TestSpanBufCap(t *testing.T) {
	b := NewSpanBuf("n", 0)
	for i := 0; i < maxSpansPerNode+10; i++ {
		b.End(b.Start("s"))
	}
	if got := len(b.Snapshot()); got != maxSpansPerNode {
		t.Fatalf("buffer grew to %d spans, cap is %d", got, maxSpansPerNode)
	}
}

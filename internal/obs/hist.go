package obs

import "sync/atomic"

// Standard bucket bounds. Units live in the series name suffix
// (`_ns`, `_bytes`), bounds are plain uint64 observations.
var (
	// LatencyBuckets covers 100µs..10s in nanoseconds.
	LatencyBuckets = []uint64{
		100_000, 500_000, 1_000_000, 5_000_000, 10_000_000,
		50_000_000, 100_000_000, 500_000_000, 1_000_000_000,
		5_000_000_000, 10_000_000_000,
	}
	// SizeBuckets covers 64B..1MiB payload sizes.
	SizeBuckets = []uint64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}
	// CountBuckets covers small cardinalities (drain rounds, retries).
	CountBuckets = []uint64{1, 2, 4, 8, 16, 32, 64}
	// PercentBuckets covers coverage percentages.
	PercentBuckets = []uint64{25, 50, 75, 90, 95, 99, 100}
)

// Histogram is a fixed-bound, lock-free histogram. Observations are
// uint64 (nanoseconds, bytes, counts); each lands in the first bucket
// whose upper bound is ≥ the value, with an implicit +Inf overflow
// bucket. Memory is bounded at creation: len(bounds)+1 slots.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf overflow
	sum    atomic.Uint64
	count  atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending bounds.
// Nil/empty bounds default to CountBuckets.
func NewHistogram(bounds []uint64) *Histogram {
	if len(bounds) == 0 {
		bounds = CountBuckets
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the running total of observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// samples expands the histogram into Prometheus-style cumulative
// bucket samples plus _sum and _count under the given series name.
func (h *Histogram) samples(name string) []Sample {
	out := make([]Sample, 0, len(h.bounds)+3)
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		out = append(out, Sample{
			Name:  spliceLabel(name, "_bucket", "le", utoa(b)),
			Value: float64(cum),
		})
	}
	cum += h.counts[len(h.bounds)].Load()
	out = append(out,
		Sample{Name: spliceLabel(name, "_bucket", "le", "+Inf"), Value: float64(cum)},
		Sample{Name: suffixed(name, "_sum"), Value: float64(h.sum.Load())},
		Sample{Name: suffixed(name, "_count"), Value: float64(h.count.Load())},
	)
	return out
}

func utoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

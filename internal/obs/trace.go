package obs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/wire"
)

// Span is one timed phase of a query on one node. IDs are globally
// unique (high bits hash the node address); Parent links phases into a
// tree, with every node's top-level spans parented on the
// coordinator's root span so the assembled trace is a single tree.
type Span struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Node   string `json:"node"`
	Name   string `json:"name"`
	Start  int64  `json:"start_ns"` // local-clock unix nanos
	End    int64  `json:"end_ns"`
	Detail string `json:"detail,omitempty"`
}

const maxSpansPerNode = 128

// SpanBuf collects one node's spans for one query. All methods are
// nil-safe (a nil buffer records nothing) so continuous queries and
// trace-disabled paths cost a single pointer check. The buffer is
// bounded: past maxSpansPerNode, new spans are dropped.
type SpanBuf struct {
	mu     sync.Mutex
	node   string
	parent uint64 // default parent: the coordinator's root span id
	nextID uint64
	spans  []Span
	open   map[uint64]int // open span id → index in spans
}

// NewSpanBuf builds a span buffer for one node's view of one query.
// root is the coordinator's root span id (0 on the coordinator itself,
// whose root span is created explicitly).
func NewSpanBuf(node string, root uint64) *SpanBuf {
	h := fnv.New64a()
	h.Write([]byte(node))
	return &SpanBuf{
		node:   node,
		parent: root,
		nextID: h.Sum64()<<16 | 1,
		open:   make(map[uint64]int),
	}
}

// Start opens a span named name, parented on the buffer's root.
// It returns the span id for End/EndDetail; 0 on a nil buffer.
func (b *SpanBuf) Start(name string) uint64 {
	return b.StartChild(0, name)
}

// Root opens the buffer's top-level span and makes it the default
// parent of all subsequent spans — the coordinator's query root whose
// id is disseminated to participants.
func (b *SpanBuf) Root(name string) uint64 {
	id := b.StartChild(0, name)
	if b != nil && id != 0 {
		b.mu.Lock()
		b.parent = id
		b.mu.Unlock()
	}
	return id
}

// StartChild opens a span under an explicit parent span id (0 means
// the buffer's default root parent).
func (b *SpanBuf) StartChild(parent uint64, name string) uint64 {
	if b == nil {
		return 0
	}
	now := time.Now().UnixNano()
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.spans) >= maxSpansPerNode {
		return 0
	}
	id := b.nextID
	b.nextID++
	if parent == 0 {
		parent = b.parent
	}
	b.open[id] = len(b.spans)
	b.spans = append(b.spans, Span{
		ID: id, Parent: parent, Node: b.node, Name: name, Start: now,
	})
	return id
}

// End closes an open span.
func (b *SpanBuf) End(id uint64) { b.EndDetail(id, "") }

// EndDetail closes an open span and attaches a detail string.
func (b *SpanBuf) EndDetail(id uint64, detail string) {
	if b == nil || id == 0 {
		return
	}
	now := time.Now().UnixNano()
	b.mu.Lock()
	defer b.mu.Unlock()
	i, ok := b.open[id]
	if !ok {
		return
	}
	delete(b.open, id)
	b.spans[i].End = now
	if detail != "" {
		b.spans[i].Detail = detail
	}
}

// Add records an already-timed span.
func (b *SpanBuf) Add(name string, start, end time.Time, detail string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.spans) >= maxSpansPerNode {
		return
	}
	id := b.nextID
	b.nextID++
	b.spans = append(b.spans, Span{
		ID: id, Parent: b.parent, Node: b.node, Name: name,
		Start: start.UnixNano(), End: end.UnixNano(), Detail: detail,
	})
}

// CloseOpen ends every still-open span at the current instant; called
// at query teardown so cancelled phases still report a duration.
func (b *SpanBuf) CloseOpen() {
	if b == nil {
		return
	}
	now := time.Now().UnixNano()
	b.mu.Lock()
	defer b.mu.Unlock()
	for id, i := range b.open {
		b.spans[i].End = now
		delete(b.open, id)
	}
}

// Snapshot copies the recorded spans (open spans appear with End 0).
func (b *SpanBuf) Snapshot() []Span {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Span, len(b.spans))
	copy(out, b.spans)
	return out
}

// EncodeSpans writes spans onto a wire writer (piggybacked on the
// teardown stats RPC).
func EncodeSpans(w *wire.Writer, spans []Span) {
	w.Uvarint(uint64(len(spans)))
	for _, s := range spans {
		w.Uint64(s.ID)
		w.Uint64(s.Parent)
		w.String(s.Node)
		w.String(s.Name)
		w.Uint64(uint64(s.Start))
		w.Uint64(uint64(s.End))
		w.String(s.Detail)
	}
}

// DecodeSpans reads a span list written by EncodeSpans.
func DecodeSpans(r *wire.Reader) ([]Span, error) {
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > 4096 {
		return nil, fmt.Errorf("obs: span count %d too large", n)
	}
	spans := make([]Span, 0, n)
	for i := uint64(0); i < n; i++ {
		var s Span
		s.ID = r.Uint64()
		s.Parent = r.Uint64()
		s.Node = r.String()
		s.Name = r.String()
		s.Start = int64(r.Uint64())
		s.End = int64(r.Uint64())
		s.Detail = r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		spans = append(spans, s)
	}
	return spans, nil
}

// Trace is one query's assembled cross-node span tree.
type Trace struct {
	Query uint64 `json:"query"`
	Root  uint64 `json:"root,omitempty"`
	Coord string `json:"coordinator"`
	Spans []Span `json:"spans"`
}

// AssembleTrace merges per-node span sets into one trace, normalizing
// clock skew: node clocks are independent, so each non-coordinator
// node's spans are translated as a block so that its earliest span
// starts at the coordinator's root-span start (remote work cannot
// begin before dissemination). Relative timing within a node is
// preserved exactly; cross-node offsets are approximate by design.
func AssembleTrace(query, root uint64, coord string, byNode map[string][]Span) *Trace {
	t := &Trace{Query: query, Root: root, Coord: coord}
	// Anchor: the coordinator's earliest span start (its root span).
	var anchor int64
	for _, s := range byNode[coord] {
		if anchor == 0 || s.Start < anchor {
			anchor = s.Start
		}
	}
	nodes := make([]string, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		spans := byNode[n]
		var shift int64
		if n != coord && anchor != 0 {
			var earliest int64
			for _, s := range spans {
				if earliest == 0 || s.Start < earliest {
					earliest = s.Start
				}
			}
			if earliest != 0 {
				shift = anchor - earliest
			}
		}
		for _, s := range spans {
			if shift != 0 {
				s.Start += shift
				if s.End != 0 {
					s.End += shift
				}
			}
			t.Spans = append(t.Spans, s)
		}
	}
	sort.SliceStable(t.Spans, func(i, j int) bool { return t.Spans[i].Start < t.Spans[j].Start })
	return t
}

// Nodes lists the distinct node addresses contributing spans.
func (t *Trace) Nodes() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range t.Spans {
		if !seen[s.Node] {
			seen[s.Node] = true
			out = append(out, s.Node)
		}
	}
	sort.Strings(out)
	return out
}

// JSON renders the trace as a JSON document.
func (t *Trace) JSON() []byte {
	b, err := json.Marshal(t)
	if err != nil {
		return []byte("{}")
	}
	return b
}

// Render draws a human-readable TRACE tree: one block per node
// (coordinator first), spans nested by parent, offsets relative to the
// trace start.
func (t *Trace) Render() string {
	if t == nil || len(t.Spans) == 0 {
		return "TRACE: no spans\n"
	}
	t0, tEnd := t.Spans[0].Start, int64(0)
	for _, s := range t.Spans {
		if s.Start < t0 {
			t0 = s.Start
		}
		if s.End > tEnd {
			tEnd = s.End
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "TRACE query %d: %d spans, %d nodes, %s\n",
		t.Query, len(t.Spans), len(t.Nodes()), fmtDur(tEnd-t0))

	byNode := make(map[string][]Span)
	for _, s := range t.Spans {
		byNode[s.Node] = append(byNode[s.Node], s)
	}
	nodes := t.Nodes()
	// Coordinator block first.
	sort.SliceStable(nodes, func(i, j int) bool {
		if (nodes[i] == t.Coord) != (nodes[j] == t.Coord) {
			return nodes[i] == t.Coord
		}
		return nodes[i] < nodes[j]
	})
	for _, n := range nodes {
		role := ""
		if n == t.Coord {
			role = " (coordinator)"
		}
		fmt.Fprintf(&b, "  %s%s\n", n, role)
		spans := byNode[n]
		ids := make(map[uint64]bool, len(spans))
		children := make(map[uint64][]Span)
		for _, s := range spans {
			ids[s.ID] = true
		}
		var roots []Span
		for _, s := range spans {
			if s.Parent != 0 && ids[s.Parent] && s.Parent != s.ID {
				children[s.Parent] = append(children[s.Parent], s)
			} else {
				roots = append(roots, s)
			}
		}
		var walk func(s Span, depth int)
		walk = func(s Span, depth int) {
			dur := "open"
			if s.End != 0 {
				dur = fmtDur(s.End - s.Start)
			}
			detail := ""
			if s.Detail != "" {
				detail = "  [" + s.Detail + "]"
			}
			fmt.Fprintf(&b, "    %s+%-9s %-*s %s%s\n",
				strings.Repeat("  ", depth), fmtDur(s.Start-t0), 24-2*depth, s.Name, dur, detail)
			for _, c := range children[s.ID] {
				walk(c, depth+1)
			}
		}
		for _, s := range roots {
			walk(s, 0)
		}
	}
	return b.String()
}

func fmtDur(ns int64) string {
	if ns < 0 {
		ns = 0
	}
	return time.Duration(ns).Round(10 * time.Microsecond).String()
}

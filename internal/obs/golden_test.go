package obs_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/piertest"
)

var update = flag.Bool("update", false, "rewrite testdata/metrics_names.golden")

// TestMetricsNamesGolden guards against silent metric-name drift: the
// static series a node + engine register at construction are pinned to
// a committed golden list. Renaming or dropping a series breaks every
// dashboard scraping it, so it must show up in review as a golden-file
// diff (regenerate with `go test ./internal/obs -run Golden -update`).
//
// Dynamic series (per-RPC-method labels, created lazily on first use)
// are filtered out — their set depends on what traffic the cluster
// happened to see.
func TestMetricsNamesGolden(t *testing.T) {
	c, err := piertest.New(piertest.Options{N: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	engine.New(c.Nodes[0], engine.Config{})

	var names []string
	for _, n := range c.Nodes[0].Obs().Names() {
		if strings.Contains(n, `{method=`) {
			continue
		}
		names = append(names, n)
	}
	got := strings.Join(names, "\n") + "\n"

	golden := filepath.Join("testdata", "metrics_names.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden list (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("registered metric names drifted from %s\n(metric names are stable API: if the change is intentional, regenerate with -update)\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

package stats

import (
	"sync"

	"repro/internal/tuple"
)

// Local maintains each node's incremental per-table sketches over its
// local DHT partition: every stored primary item feeds the table's
// sketch, every expired item decrements its row count. Incremental
// maintenance keeps the sketches O(1)-cheap per publish/republish.
// Incremental sketches are approximate in both directions — distinct
// counters and samples cannot forget expired items (drift high), and
// an item counted both at registration backfill and by a racing
// store hook counts twice — so an ANALYZE rebuild (a fresh
// LScanParts pass) periodically replaces the drifted sketch: soft
// state repaired by re-measuring, exactly like the DHT items
// themselves.
type Local struct {
	mu   sync.Mutex
	byNS map[string]*localTable
}

type localTable struct {
	table string
	cols  []string
	sk    *TableSketch
}

// NewLocal creates an empty registry.
func NewLocal() *Local {
	return &Local{byNS: make(map[string]*localTable)}
}

// Register begins sketching a table's namespace, reporting whether
// the registration was new. Re-registration is idempotent (false).
// The sketch starts empty — items that arrived before registration
// were dropped, so the caller backfills a new registration from its
// current partition (DefineTable does).
func (l *Local) Register(table, ns string, cols []string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.byNS[ns]; ok {
		return false
	}
	l.byNS[ns] = &localTable{
		table: table,
		cols:  append([]string(nil), cols...),
		sk:    NewTableSketch(table, cols),
	}
	return true
}

// OnStored observes one newly stored primary item (the DHT store
// hook).
func (l *Local) OnStored(ns string, payload []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lt, ok := l.byNS[ns]
	if !ok {
		return
	}
	t, err := tuple.FromBytes(payload)
	if err != nil {
		return
	}
	lt.sk.Add(t)
}

// OnExpired observes one expired primary item.
func (l *Local) OnExpired(ns string, payload []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lt, ok := l.byNS[ns]; ok {
		lt.sk.RemoveRow()
	}
}

// Snapshot returns a deep copy of a table's incremental sketch (nil
// when the table was never registered).
func (l *Local) Snapshot(table string) *TableSketch {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, lt := range l.byNS {
		if lt.table == table {
			return lt.sk.Clone()
		}
	}
	return nil
}

// Reset swaps in an empty sketch for a table — called at the start
// of an ANALYZE rebuild so items arriving while the rebuild scans
// land in the new sketch instead of the drifted one being discarded.
func (l *Local) Reset(table string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, lt := range l.byNS {
		if lt.table == table {
			lt.sk = NewTableSketch(table, lt.cols)
			return
		}
	}
}

// Absorb merges a rebuilt sketch into a table's incremental sketch —
// the post-ANALYZE repair. Merging (rather than replacing) keeps
// items stored during the rebuild scan: a concurrent arrival may
// count twice (in the scan and via the store hook), which drifts
// high and is repaired by the next rebuild, where replacement would
// lose it permanently.
func (l *Local) Absorb(table string, sk *TableSketch) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, lt := range l.byNS {
		if lt.table == table {
			if lt.sk.Merge(sk) != nil {
				lt.sk = sk.Clone() // schema conflict: the rebuild wins
			}
			return
		}
	}
}

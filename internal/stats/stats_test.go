package stats

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/tuple"
	"repro/internal/wire"
)

// TestHLLAccuracy: the distinct estimate stays within a relative
// error bound across cardinalities 10..10^6 (standard error for 2048
// registers is ~2.3%; the bound leaves slack for unlucky hash draws,
// and linear counting keeps small cardinalities near-exact).
func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{10, 100, 1000, 10000, 100000, 1000000} {
		h := NewHLL()
		for i := 0; i < n; i++ {
			h.Add([]byte(fmt.Sprintf("value-%d-%d", n, i)))
		}
		est := h.Estimate()
		relErr := math.Abs(float64(est)-float64(n)) / float64(n)
		bound := 0.10
		if n <= 100 {
			bound = 0.05 // linear counting regime
		}
		if relErr > bound {
			t.Errorf("n=%d: estimate %d (rel err %.3f > %.2f)", n, est, relErr, bound)
		}
	}
}

// TestHLLDuplicatesIgnored: re-adding values never inflates the
// estimate.
func TestHLLDuplicatesIgnored(t *testing.T) {
	h := NewHLL()
	for rep := 0; rep < 5; rep++ {
		for i := 0; i < 500; i++ {
			h.Add([]byte(fmt.Sprintf("dup-%d", i)))
		}
	}
	est := h.Estimate()
	if est < 450 || est > 550 {
		t.Fatalf("500 distinct values re-added: estimate %d", est)
	}
}

func randomSketch(r *rand.Rand, rows int) *TableSketch {
	s := NewTableSketch("t", []string{"a", "b"})
	for i := 0; i < rows; i++ {
		s.Add(tuple.Tuple{
			tuple.Int(int64(r.Intn(200))),
			tuple.String(fmt.Sprintf("s%d", r.Intn(50))),
		})
	}
	return s
}

func encodeSketch(s *TableSketch) []byte { return s.Bytes() }

// TestSketchMergeCommutative: a⊕b and b⊕a encode byte-identically —
// registers max, row counts sum, samples keep the same bottom-k.
func TestSketchMergeCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		a1, b1 := randomSketch(r, 1+r.Intn(400)), randomSketch(r, 1+r.Intn(400))
		a2, b2 := a1.Clone(), b1.Clone()
		if err := a1.Merge(b1); err != nil {
			t.Fatal(err)
		}
		if err := b2.Merge(a2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeSketch(a1), encodeSketch(b2)) {
			t.Fatalf("trial %d: a⊕b != b⊕a", trial)
		}
	}
}

// TestSketchMergeAssociative: (a⊕b)⊕c and a⊕(b⊕c) encode
// byte-identically.
func TestSketchMergeAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		a, b, c := randomSketch(r, 1+r.Intn(300)), randomSketch(r, 1+r.Intn(300)), randomSketch(r, 1+r.Intn(300))

		ab := a.Clone()
		if err := ab.Merge(b); err != nil {
			t.Fatal(err)
		}
		if err := ab.Merge(c); err != nil {
			t.Fatal(err)
		}

		bc := b.Clone()
		if err := bc.Merge(c); err != nil {
			t.Fatal(err)
		}
		abc := a.Clone()
		if err := abc.Merge(bc); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeSketch(ab), encodeSketch(abc)) {
			t.Fatalf("trial %d: (a⊕b)⊕c != a⊕(b⊕c)", trial)
		}
	}
}

// TestSketchMergeSchemaMismatch: merging sketches of different tables
// or shapes errors instead of corrupting estimates.
func TestSketchMergeSchemaMismatch(t *testing.T) {
	a := NewTableSketch("t", []string{"a"})
	if err := a.Merge(NewTableSketch("u", []string{"a"})); err == nil {
		t.Fatal("cross-table merge accepted")
	}
	if err := a.Merge(NewTableSketch("t", []string{"a", "b"})); err == nil {
		t.Fatal("arity-mismatched merge accepted")
	}
	if err := a.Merge(NewTableSketch("t", []string{"x"})); err == nil {
		t.Fatal("column-name-mismatched merge accepted")
	}
}

// TestSketchRowsAndDistincts: counts are exact, distincts accurate on
// a known composition.
func TestSketchRowsAndDistincts(t *testing.T) {
	s := NewTableSketch("t", []string{"k", "v"})
	const rows, distinctK = 5000, 40
	for i := 0; i < rows; i++ {
		s.Add(tuple.Tuple{tuple.Int(int64(i % distinctK)), tuple.Int(int64(i))})
	}
	if s.Rows != rows {
		t.Fatalf("rows %d, want %d", s.Rows, rows)
	}
	if d := s.Distinct("k"); d < distinctK*9/10 || d > distinctK*11/10 {
		t.Fatalf("distinct(k)=%d, want ~%d", d, distinctK)
	}
	if d := s.Distinct("v"); d < rows*9/10 || d > rows*11/10 {
		t.Fatalf("distinct(v)=%d, want ~%d", d, rows)
	}
}

// TestSketchCodecRoundTrip: encode→decode→encode byte-identical.
func TestSketchCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		s := randomSketch(r, r.Intn(500))
		enc := encodeSketch(s)
		dec, err := TableSketchFromBytes(enc)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, encodeSketch(dec)) {
			t.Fatal("re-encode differs")
		}
		if dec.Rows != s.Rows || len(dec.Cols) != len(s.Cols) {
			t.Fatal("decoded structure differs")
		}
	}
}

// TestSampleBottomK: the sample holds the k smallest hashes seen,
// regardless of arrival order, and never exceeds k.
func TestSampleBottomK(t *testing.T) {
	rows := make([][]byte, 200)
	for i := range rows {
		rows[i] = []byte(fmt.Sprintf("row-%d", i))
	}
	fwd, rev := NewSample(16), NewSample(16)
	for _, b := range rows {
		fwd.Add(hash64(b), b)
	}
	for i := len(rows) - 1; i >= 0; i-- {
		rev.Add(hash64(rows[i]), rows[i])
	}
	wf, wr := wire.NewWriter(64), wire.NewWriter(64)
	fwd.Encode(wf)
	rev.Encode(wr)
	if !bytes.Equal(wf.Bytes(), wr.Bytes()) {
		t.Fatal("sample depends on arrival order")
	}
	if len(fwd.Items) != 16 {
		t.Fatalf("sample size %d, want 16", len(fwd.Items))
	}
	for i := 1; i < len(fwd.Items); i++ {
		if fwd.Items[i-1].Hash >= fwd.Items[i].Hash {
			t.Fatal("sample not sorted/unique")
		}
	}
}

// TestDigestCodec round-trips digest sets.
func TestDigestCodec(t *testing.T) {
	now := time.Unix(1000, 42000)
	in := []Digest{
		{Table: "a", Rows: 512, Distinct: map[string]int64{"x": 40, "y": 7}, MeasuredAt: now, TTL: time.Minute},
		{Table: "b", Rows: 3},
	}
	w := wire.NewWriter(64)
	EncodeDigests(w, in)
	out, err := DecodeDigests(wire.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Table != "a" || out[0].Rows != 512 ||
		out[0].Distinct["x"] != 40 || out[0].TTL != time.Minute || !out[0].MeasuredAt.Equal(now) {
		t.Fatalf("digest round trip: %+v", out)
	}
	if out[1].Expired(now.Add(time.Hour)) {
		t.Fatal("zero-TTL digest should never expire")
	}
	if !in[0].Expired(now.Add(2 * time.Minute)) {
		t.Fatal("TTL'd digest should expire")
	}
}

// TestLocalIncremental: stored items feed the sketch, expiries
// decrement rows, Reset+Absorb repair.
func TestLocalIncremental(t *testing.T) {
	l := NewLocal()
	l.Register("t", "table:t", []string{"k", "v"})
	for i := 0; i < 100; i++ {
		tt := tuple.Tuple{tuple.Int(int64(i % 10)), tuple.Int(int64(i))}
		l.OnStored("table:t", tt.Bytes())
	}
	sk := l.Snapshot("t")
	if sk == nil || sk.Rows != 100 {
		t.Fatalf("snapshot rows: %+v", sk)
	}
	if d := sk.Distinct("k"); d < 9 || d > 11 {
		t.Fatalf("distinct(k)=%d", d)
	}
	victim := tuple.Tuple{tuple.Int(0), tuple.Int(0)}
	l.OnExpired("table:t", victim.Bytes())
	if sk = l.Snapshot("t"); sk.Rows != 99 {
		t.Fatalf("rows after expiry %d, want 99", sk.Rows)
	}
	l.OnStored("table:other", victim.Bytes()) // unregistered: ignored

	// Rebuild repair: Reset discards the drifted sketch, items stored
	// during the rebuild land in the fresh one, and Absorb merges the
	// scan result in without losing them.
	l.Reset("t")
	racer := tuple.Tuple{tuple.Int(5), tuple.Int(500)}
	l.OnStored("table:t", racer.Bytes()) // arrives mid-rebuild
	rebuilt := NewTableSketch("t", []string{"k", "v"})
	rebuilt.Add(victim)
	l.Absorb("t", rebuilt)
	if sk = l.Snapshot("t"); sk.Rows != 2 {
		t.Fatalf("rows after rebuild absorb %d, want 2 (scan row + racing arrival)", sk.Rows)
	}
}

// TestWideTableTruncates: builders truncate past MaxColumns so every
// sketch they encode is one every receiver accepts; rows stay exact.
func TestWideTableTruncates(t *testing.T) {
	cols := make([]string, MaxColumns+40)
	for i := range cols {
		cols[i] = fmt.Sprintf("c%d", i)
	}
	s := NewTableSketch("wide", cols)
	if len(s.Cols) != MaxColumns {
		t.Fatalf("sketch kept %d columns", len(s.Cols))
	}
	row := make(tuple.Tuple, len(cols))
	for i := range row {
		row[i] = tuple.Int(int64(i))
	}
	for n := 0; n < 10; n++ {
		s.Add(row)
	}
	if s.Rows != 10 {
		t.Fatalf("rows %d, want 10", s.Rows)
	}
	if d := s.Distinct("c0"); d != 1 {
		t.Fatalf("distinct(c0)=%d, want 1", d)
	}
	if _, err := TableSketchFromBytes(s.Bytes()); err != nil {
		t.Fatalf("truncated sketch rejected by its own decoder: %v", err)
	}
}

// TestRegisterReportsNew: first registration true, re-registration
// false (the caller's backfill trigger).
func TestRegisterReportsNew(t *testing.T) {
	l := NewLocal()
	if !l.Register("t", "table:t", []string{"k"}) {
		t.Fatal("first registration not new")
	}
	if l.Register("t", "table:t", []string{"k"}) {
		t.Fatal("re-registration reported new")
	}
}

// TestDecodeSampleRejectsMalformed: merge adopts decoded samples
// verbatim, so wire input violating the sorted/unique invariant (or
// an absurd capacity) must fail the decode.
func TestDecodeSampleRejectsMalformed(t *testing.T) {
	encode := func(k int, hashes []uint64) []byte {
		w := wire.NewWriter(64)
		w.Uvarint(uint64(k))
		w.Uvarint(uint64(len(hashes)))
		for _, h := range hashes {
			w.Uint64(h)
			w.BytesLP([]byte("row"))
		}
		return w.Bytes()
	}
	if _, err := DecodeSample(wire.NewReader(encode(8, []uint64{5, 3}))); err == nil {
		t.Fatal("descending hashes accepted")
	}
	if _, err := DecodeSample(wire.NewReader(encode(8, []uint64{5, 5}))); err == nil {
		t.Fatal("duplicate hashes accepted")
	}
	if _, err := DecodeSample(wire.NewReader(encode(1<<20, nil))); err == nil {
		t.Fatal("absurd capacity accepted")
	}
	if s, err := DecodeSample(wire.NewReader(encode(8, []uint64{3, 5}))); err != nil || len(s.Items) != 2 {
		t.Fatalf("well-formed sample rejected: %v", err)
	}
}

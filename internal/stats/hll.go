// HyperLogLog distinct counting. Every node sketches the distinct
// values of each column of its local DHT partition; sketches merge by
// register-wise max, so the network-wide distinct count assembles
// from per-partition passes without ever shipping the values
// themselves — the in-network aggregation idea applied to statistics.
package stats

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/wire"
)

const (
	// hllP is the register-index width: 2^hllP registers of one byte
	// each, for a ~2.3% standard error at 2 KB per column sketch.
	hllP = 11
	hllM = 1 << hllP
)

// hllAlpha is the bias-correction constant for hllM registers.
var hllAlpha = 0.7213 / (1 + 1.079/float64(hllM))

// HLL is a fixed-size HyperLogLog sketch. The zero value is not
// usable; create with NewHLL.
type HLL struct {
	regs []byte
}

// NewHLL creates an empty sketch.
func NewHLL() *HLL { return &HLL{regs: make([]byte, hllM)} }

// AddHash inserts a pre-hashed value.
func (h *HLL) AddHash(x uint64) {
	idx := x >> (64 - hllP)
	// Rank of the first set bit in the remaining 64-hllP bits (the
	// trailing 1 guarantees termination at the register width).
	rho := uint8(bits.LeadingZeros64(x<<hllP|1<<(hllP-1))) + 1
	if rho > h.regs[idx] {
		h.regs[idx] = rho
	}
}

// Add inserts a value by its canonical byte encoding.
func (h *HLL) Add(b []byte) { h.AddHash(hash64(b)) }

// Estimate returns the distinct-count estimate, with the linear
// counting small-range correction.
func (h *HLL) Estimate() int64 {
	sum := 0.0
	zeros := 0
	for _, r := range h.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	est := hllAlpha * hllM * hllM / sum
	if est <= 2.5*hllM && zeros > 0 {
		est = hllM * math.Log(float64(hllM)/float64(zeros))
	}
	return int64(est + 0.5)
}

// Merge folds o in (register-wise max) — commutative, associative,
// and idempotent, so merge order never changes the encoded bytes.
func (h *HLL) Merge(o *HLL) {
	for i, r := range o.regs {
		if r > h.regs[i] {
			h.regs[i] = r
		}
	}
}

// Clone deep-copies the sketch.
func (h *HLL) Clone() *HLL {
	c := NewHLL()
	copy(c.regs, h.regs)
	return c
}

// Encode appends the sketch to w.
func (h *HLL) Encode(w *wire.Writer) {
	w.Byte(hllP)
	w.Raw(h.regs)
}

// DecodeHLL reads a sketch written by Encode.
func DecodeHLL(r *wire.Reader) (*HLL, error) {
	if p := r.Byte(); p != hllP {
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("stats: HLL precision %d, want %d", p, hllP)
	}
	h := NewHLL()
	copy(h.regs, r.Raw(hllM))
	return h, r.Err()
}

// hash64 maps a byte string onto 64 bits: FNV-1a with a splitmix64
// finisher for avalanche (FNV alone biases the low bits HLL's rho
// computation reads). Deterministic across nodes — sketches built on
// different machines must agree on hashes to merge.
func hash64(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	// splitmix64 finisher.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Package stats implements PIER's distributed statistics sketches:
// per-table, per-partition summaries — a row counter, a HyperLogLog
// distinct-counter per column, and a bottom-k (KMV) row sample — that
// merge deterministically, so the ANALYZE gather can combine
// per-partition sketches in any order and every node arrives at the
// same network-wide estimate. All statistics are soft state in the
// paper's sense: measured, TTL'd, refreshed by re-measuring, never
// stored in a global persistent catalog.
package stats

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/tuple"
	"repro/internal/wire"
)

// DefaultSampleK is the bottom-k row-sample capacity.
const DefaultSampleK = 64

// MaxColumns bounds the per-table column sketches; receivers reject
// anything larger, so builders truncate here rather than encode
// sketches the whole network would silently drop. Row counts stay
// exact regardless — only distinct estimates for columns past the
// cap are unavailable.
const MaxColumns = 256

// MaxDigests bounds one gossip message's digest count (one digest
// per table); encoders truncate, receivers reject.
const MaxDigests = 4096

// ColumnSketch is one column's distinct-counter.
type ColumnSketch struct {
	// Name is the base (unqualified) column name — the key the
	// catalog and optimizer use for distinct estimates.
	Name string
	HLL  *HLL
}

// TableSketch summarizes one table's partition (or, after merging,
// the whole table).
type TableSketch struct {
	Table string
	// Rows counts the tuples observed (all of them — row counting is
	// cheap even when the distinct/sample pass is sampled).
	Rows int64
	// Cols holds one distinct-counter per column, in schema order.
	Cols []ColumnSketch
	// Sample is the bottom-k row sample.
	Sample *Sample
}

// NewTableSketch creates an empty sketch over the given base column
// names (truncated to MaxColumns).
func NewTableSketch(table string, cols []string) *TableSketch {
	if len(cols) > MaxColumns {
		cols = cols[:MaxColumns]
	}
	s := &TableSketch{Table: table, Sample: NewSample(DefaultSampleK)}
	for _, c := range cols {
		s.Cols = append(s.Cols, ColumnSketch{Name: c, HLL: NewHLL()})
	}
	return s
}

// Add observes one tuple: count it, feed every column's
// distinct-counter, and offer the row to the sample. Tuples with the
// wrong arity only count rows (best effort, like scans; tables wider
// than MaxColumns sketch their first MaxColumns columns).
func (s *TableSketch) Add(t tuple.Tuple) {
	s.Rows++
	if len(t) != len(s.Cols) && !(len(s.Cols) == MaxColumns && len(t) > MaxColumns) {
		return
	}
	w := wire.GetWriter()
	for i := range s.Cols {
		w.Reset()
		t[i].Encode(w)
		s.Cols[i].HLL.Add(w.Bytes())
	}
	w.Reset()
	t.Encode(w)
	enc := w.Bytes()
	s.Sample.Add(hash64(enc), enc)
	wire.PutWriter(w)
}

// AddRowOnly observes one tuple for the row count alone — the sampled
// pass skips the per-column work for rows outside the sample stride.
func (s *TableSketch) AddRowOnly() { s.Rows++ }

// RemoveRow decrements the row count (TTL expiry of a counted item).
// Distinct counters and the sample cannot forget — they drift high
// until the next rebuild, the documented soft-state trade-off.
func (s *TableSketch) RemoveRow() {
	if s.Rows > 0 {
		s.Rows--
	}
}

// Distinct returns the distinct estimate for a base column name
// (0 when the column is unknown).
func (s *TableSketch) Distinct(col string) int64 {
	for i := range s.Cols {
		if s.Cols[i].Name == col {
			return s.Cols[i].HLL.Estimate()
		}
	}
	return 0
}

// Distincts returns every column's distinct estimate.
func (s *TableSketch) Distincts() map[string]int64 {
	out := make(map[string]int64, len(s.Cols))
	for i := range s.Cols {
		out[s.Cols[i].Name] = s.Cols[i].HLL.Estimate()
	}
	return out
}

// Merge folds another partition's sketch of the same table in.
// Columns match by name; a sketch from a node with a conflicting
// schema errors rather than silently corrupting estimates.
func (s *TableSketch) Merge(o *TableSketch) error {
	if o.Table != s.Table {
		return fmt.Errorf("stats: merging sketch of %q into %q", o.Table, s.Table)
	}
	if len(o.Cols) != len(s.Cols) {
		return fmt.Errorf("stats: sketch of %q has %d columns, want %d", o.Table, len(o.Cols), len(s.Cols))
	}
	for i := range s.Cols {
		if s.Cols[i].Name != o.Cols[i].Name {
			return fmt.Errorf("stats: sketch column %q, want %q", o.Cols[i].Name, s.Cols[i].Name)
		}
	}
	s.Rows += o.Rows
	for i := range s.Cols {
		s.Cols[i].HLL.Merge(o.Cols[i].HLL)
	}
	s.Sample.Merge(o.Sample)
	return nil
}

// Clone deep-copies the sketch.
func (s *TableSketch) Clone() *TableSketch {
	c := &TableSketch{Table: s.Table, Rows: s.Rows, Sample: s.Sample.Clone()}
	for i := range s.Cols {
		c.Cols = append(c.Cols, ColumnSketch{Name: s.Cols[i].Name, HLL: s.Cols[i].HLL.Clone()})
	}
	return c
}

// Encode appends the sketch to w.
func (s *TableSketch) Encode(w *wire.Writer) {
	w.String(s.Table)
	w.Varint(s.Rows)
	w.Uvarint(uint64(len(s.Cols)))
	for i := range s.Cols {
		w.String(s.Cols[i].Name)
		s.Cols[i].HLL.Encode(w)
	}
	s.Sample.Encode(w)
}

// Bytes serializes the sketch into a fresh buffer.
func (s *TableSketch) Bytes() []byte {
	w := wire.NewWriter(256 + hllM*len(s.Cols))
	s.Encode(w)
	return w.Bytes()
}

// DecodeTableSketch reads a sketch written by Encode.
func DecodeTableSketch(r *wire.Reader) (*TableSketch, error) {
	s := &TableSketch{}
	s.Table = r.String()
	s.Rows = r.Varint()
	n := int(r.Uvarint())
	if n > MaxColumns {
		return nil, fmt.Errorf("stats: sketch with %d columns", n)
	}
	for i := 0; i < n; i++ {
		name := r.String()
		h, err := DecodeHLL(r)
		if err != nil {
			return nil, err
		}
		s.Cols = append(s.Cols, ColumnSketch{Name: name, HLL: h})
	}
	var err error
	if s.Sample, err = DecodeSample(r); err != nil {
		return nil, err
	}
	return s, r.Err()
}

// TableSketchFromBytes decodes one sketch, rejecting trailing bytes.
func TableSketchFromBytes(buf []byte) (*TableSketch, error) {
	r := wire.NewReader(buf)
	s, err := DecodeTableSketch(r)
	if err != nil {
		return nil, err
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return s, nil
}

// ---------------------------------------------------------------------------
// Bottom-k (KMV) row sample

// SampleItem is one sampled row with its hash rank.
type SampleItem struct {
	Hash uint64
	Row  []byte
}

// Sample keeps the k rows with the smallest hash of their canonical
// encoding — a uniform sample without replacement whose merge (union,
// keep k smallest) is deterministic and order-independent, unlike a
// classic randomized reservoir.
type Sample struct {
	K     int
	Items []SampleItem // sorted by Hash ascending, hashes unique
}

// NewSample creates an empty bottom-k sample.
func NewSample(k int) *Sample {
	if k < 1 {
		k = 1
	}
	return &Sample{K: k}
}

// Add offers one row.
func (s *Sample) Add(hash uint64, row []byte) {
	i := sort.Search(len(s.Items), func(i int) bool { return s.Items[i].Hash >= hash })
	if i < len(s.Items) && s.Items[i].Hash == hash {
		return // duplicate row (or hash collision): already represented
	}
	if len(s.Items) >= s.K && i >= s.K {
		return
	}
	row = append([]byte(nil), row...)
	s.Items = append(s.Items, SampleItem{})
	copy(s.Items[i+1:], s.Items[i:])
	s.Items[i] = SampleItem{Hash: hash, Row: row}
	if len(s.Items) > s.K {
		s.Items = s.Items[:s.K]
	}
}

// Merge unions another sample in, keeping the k smallest hashes.
// Capacity takes the larger of the two k's, so a small-capacity peer
// sketch arriving first can never permanently truncate the merged
// network-wide sample.
func (s *Sample) Merge(o *Sample) {
	if o == nil {
		return
	}
	if o.K > s.K {
		s.K = o.K
	}
	for _, it := range o.Items {
		s.Add(it.Hash, it.Row)
	}
}

// Rows decodes the sampled rows (best effort).
func (s *Sample) Rows() []tuple.Tuple {
	out := make([]tuple.Tuple, 0, len(s.Items))
	for _, it := range s.Items {
		if t, err := tuple.FromBytes(it.Row); err == nil {
			out = append(out, t)
		}
	}
	return out
}

// Clone deep-copies the sample.
func (s *Sample) Clone() *Sample {
	c := &Sample{K: s.K, Items: make([]SampleItem, len(s.Items))}
	for i, it := range s.Items {
		c.Items[i] = SampleItem{Hash: it.Hash, Row: append([]byte(nil), it.Row...)}
	}
	return c
}

// Encode appends the sample to w.
func (s *Sample) Encode(w *wire.Writer) {
	w.Uvarint(uint64(s.K))
	w.Uvarint(uint64(len(s.Items)))
	for _, it := range s.Items {
		w.Uint64(it.Hash)
		w.BytesLP(it.Row)
	}
}

// DecodeSample reads a sample written by Encode, enforcing the
// in-memory invariants (strictly ascending unique hashes, sane
// capacity) — merge adopts decoded samples verbatim, so a malformed
// peer sketch must fail the decode rather than corrupt the
// accumulator's binary-search inserts.
func DecodeSample(r *wire.Reader) (*Sample, error) {
	k := int(r.Uvarint())
	n := int(r.Uvarint())
	if k < 1 || k > 1<<16 || n > k {
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("stats: sample k=%d n=%d", k, n)
	}
	s := &Sample{K: k}
	for i := 0; i < n; i++ {
		h := r.Uint64()
		row := append([]byte(nil), r.BytesLP()...)
		if i > 0 && h <= s.Items[i-1].Hash {
			if err := r.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("stats: sample items not strictly ascending")
		}
		s.Items = append(s.Items, SampleItem{Hash: h, Row: row})
	}
	return s, r.Err()
}

// ---------------------------------------------------------------------------
// Gossip digests

// Digest is the compact TTL'd form of one table's measured statistics
// that nodes gossip: the final estimates only, not the sketches.
// MeasuredAt travels with it so age (and expiry) are judged against
// the original measurement everywhere.
type Digest struct {
	Table      string
	Rows       int64
	Distinct   map[string]int64
	MeasuredAt time.Time
	TTL        time.Duration
}

// Expired reports whether the digest is past its soft-state lifetime.
func (d Digest) Expired(now time.Time) bool {
	return d.TTL > 0 && now.After(d.MeasuredAt.Add(d.TTL))
}

// EncodeDigests appends a digest set to w (columns in sorted order,
// so identical digests encode identically). Encode-side truncation
// mirrors the decode-side bounds exactly — a digest set a node can
// build is always one every receiver accepts.
func EncodeDigests(w *wire.Writer, ds []Digest) {
	if len(ds) > MaxDigests {
		ds = ds[:MaxDigests]
	}
	w.Uvarint(uint64(len(ds)))
	for _, d := range ds {
		w.String(d.Table)
		w.Varint(d.Rows)
		cols := make([]string, 0, len(d.Distinct))
		for c := range d.Distinct {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		if len(cols) > MaxColumns {
			cols = cols[:MaxColumns]
		}
		w.Uvarint(uint64(len(cols)))
		for _, c := range cols {
			w.String(c)
			w.Varint(d.Distinct[c])
		}
		w.Time(d.MeasuredAt)
		w.Duration(d.TTL)
	}
}

// DecodeDigests reads a digest set written by EncodeDigests.
func DecodeDigests(r *wire.Reader) ([]Digest, error) {
	n := int(r.Uvarint())
	if n > MaxDigests {
		return nil, fmt.Errorf("stats: %d digests", n)
	}
	out := make([]Digest, 0, n)
	for i := 0; i < n; i++ {
		var d Digest
		d.Table = r.String()
		d.Rows = r.Varint()
		nc := int(r.Uvarint())
		if nc > MaxColumns {
			return nil, fmt.Errorf("stats: digest with %d columns", nc)
		}
		if nc > 0 {
			d.Distinct = make(map[string]int64, nc)
		}
		for j := 0; j < nc; j++ {
			c := r.String()
			d.Distinct[c] = r.Varint()
		}
		d.MeasuredAt = r.Time()
		d.TTL = r.Duration()
		out = append(out, d)
	}
	return out, r.Err()
}

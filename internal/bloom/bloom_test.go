package bloom

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/wire"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.Add([]byte(fmt.Sprintf("key-%d", i)))
	}
	for i := 0; i < 1000; i++ {
		if !f.MayContain([]byte(fmt.Sprintf("key-%d", i))) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	f := New(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.Add([]byte(fmt.Sprintf("key-%d", i)))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.MayContain([]byte(fmt.Sprintf("absent-%d", i))) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.05 {
		t.Fatalf("false positive rate %.3f, want < 0.05 (designed 0.01)", rate)
	}
}

func TestOrMerges(t *testing.T) {
	a := New(100, 0.01)
	b := NewWithBits(a.m, a.k)
	a.Add([]byte("only-a"))
	b.Add([]byte("only-b"))
	if err := a.Or(b); err != nil {
		t.Fatal(err)
	}
	if !a.MayContain([]byte("only-a")) || !a.MayContain([]byte("only-b")) {
		t.Fatal("OR lost an element")
	}
}

func TestOrIncompatible(t *testing.T) {
	a := NewWithBits(128, 3)
	b := NewWithBits(256, 3)
	if err := a.Or(b); err == nil {
		t.Fatal("incompatible OR accepted")
	}
	if err := a.Or(nil); err == nil {
		t.Fatal("nil OR accepted")
	}
}

func TestEncodeDecode(t *testing.T) {
	f := New(500, 0.02)
	for i := 0; i < 500; i++ {
		f.Add([]byte(fmt.Sprintf("k%d", i)))
	}
	w := wire.NewWriter(f.SizeBytes() + 16)
	f.Encode(w)
	g, err := Decode(wire.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if !g.MayContain([]byte(fmt.Sprintf("k%d", i))) {
			t.Fatalf("decoded filter lost k%d", i)
		}
	}
	if g.FillRatio() != f.FillRatio() {
		t.Fatal("fill ratio changed across codec")
	}
}

func TestDecodeRejectsBadGeometry(t *testing.T) {
	w := wire.NewWriter(16)
	w.Uvarint(63) // not a multiple of 64
	w.Uvarint(3)
	if _, err := Decode(wire.NewReader(w.Bytes())); err == nil {
		t.Fatal("bad geometry accepted")
	}
	w2 := wire.NewWriter(16)
	w2.Uvarint(128)
	w2.Uvarint(99) // k too large
	if _, err := Decode(wire.NewReader(w2.Bytes())); err == nil {
		t.Fatal("bad k accepted")
	}
}

func TestFillRatioGrows(t *testing.T) {
	f := New(100, 0.01)
	r0 := f.FillRatio()
	for i := 0; i < 100; i++ {
		f.Add([]byte(fmt.Sprintf("x%d", i)))
	}
	if f.FillRatio() <= r0 {
		t.Fatal("fill ratio did not grow")
	}
	if f.FillRatio() > 0.7 {
		t.Fatalf("filter oversaturated: %.2f", f.FillRatio())
	}
}

func TestDegenerateParams(t *testing.T) {
	f := New(0, 2.0) // silly inputs fall back to sane defaults
	f.Add([]byte("x"))
	if !f.MayContain([]byte("x")) {
		t.Fatal("degenerate filter broken")
	}
}

func TestQuickMembership(t *testing.T) {
	f := New(256, 0.01)
	check := func(data []byte) bool {
		f.Add(data)
		return f.MayContain(data)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// Package bloom implements the Bloom filters PIER's distributed join
// rewrites ship between nodes to suppress rehashing of tuples that
// cannot join. Filters are fixed-size bit arrays with k hash
// functions derived from one 64-bit hash (Kirsch–Mitzenmacher), and
// they OR together so per-site filters combine at the coordinator.
package bloom

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/wire"
)

// Filter is a Bloom filter. The zero value is unusable; call New.
type Filter struct {
	bits []uint64
	m    uint64 // number of bits
	k    int    // number of hash functions
}

// New sizes a filter for n expected elements at false-positive rate p.
func New(n int, p float64) *Filter {
	if n < 1 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = 0.01
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	m = (m + 63) / 64 * 64 // round to word
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &Filter{bits: make([]uint64, m/64), m: m, k: k}
}

// NewWithBits builds a filter with exactly mBits bits (rounded up to a
// word) and k hashes — used by the bit-budget ablation bench.
func NewWithBits(mBits uint64, k int) *Filter {
	if mBits < 64 {
		mBits = 64
	}
	mBits = (mBits + 63) / 64 * 64
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &Filter{bits: make([]uint64, mBits/64), m: mBits, k: k}
}

func baseHashes(data []byte) (uint64, uint64) {
	h := fnv.New64a()
	h.Write(data)
	h1 := h.Sum64()
	h.Write([]byte{0x9e, 0x37, 0x79, 0xb9}) // continue for a second hash
	h2 := h.Sum64()
	if h2%2 == 0 { // h2 must be odd so strides cover the table
		h2++
	}
	return h1, h2
}

// Add inserts data.
func (f *Filter) Add(data []byte) {
	h1, h2 := baseHashes(data)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.m
		f.bits[bit/64] |= 1 << (bit % 64)
	}
}

// MayContain reports whether data may have been inserted (no false
// negatives; false positives at roughly the design rate).
func (f *Filter) MayContain(data []byte) bool {
	h1, h2 := baseHashes(data)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.m
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Or merges other into f. The filters must have identical geometry.
func (f *Filter) Or(other *Filter) error {
	if other == nil {
		return fmt.Errorf("bloom: cannot OR with nil filter")
	}
	if f.m != other.m || f.k != other.k {
		return fmt.Errorf("bloom: incompatible filters (m=%d/%d k=%d/%d)",
			f.m, other.m, f.k, other.k)
	}
	for i := range f.bits {
		f.bits[i] |= other.bits[i]
	}
	return nil
}

// FillRatio returns the fraction of set bits — a saturation gauge.
func (f *Filter) FillRatio() float64 {
	set := 0
	for _, w := range f.bits {
		for ; w != 0; w &= w - 1 {
			set++
		}
	}
	return float64(set) / float64(f.m)
}

// SizeBytes returns the wire size of the bit array.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// Encode appends the filter to w.
func (f *Filter) Encode(w *wire.Writer) {
	w.Uvarint(f.m)
	w.Uvarint(uint64(f.k))
	for _, word := range f.bits {
		w.Uint64(word)
	}
}

// Decode reads a filter written by Encode.
func Decode(r *wire.Reader) (*Filter, error) {
	m := r.Uvarint()
	k := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if m == 0 || m%64 != 0 || m > 1<<26 || k < 1 || k > 16 {
		return nil, fmt.Errorf("bloom: bad geometry m=%d k=%d", m, k)
	}
	f := &Filter{bits: make([]uint64, m/64), m: m, k: k}
	for i := range f.bits {
		f.bits[i] = r.Uint64()
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

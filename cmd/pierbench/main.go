// Command pierbench regenerates the paper's evaluation artifacts and
// the supporting shape experiments over the simulated testbed.
//
// Usage:
//
//	pierbench -experiment figure1 [-n 24] [-seed 1]
//	pierbench -experiment table1
//	pierbench -experiment hops
//	pierbench -experiment aggtree
//	pierbench -experiment joins
//	pierbench -experiment survival
//	pierbench -experiment churn
//	pierbench -experiment search
//	pierbench -experiment recursive
//	pierbench -experiment batching
//	pierbench -experiment multiway
//	pierbench -experiment analyze
//	pierbench -experiment spill
//	pierbench -experiment overlay
//	pierbench -experiment explain
//	pierbench -experiment localpipe
//	pierbench -experiment obs
//	pierbench -experiment serve
//	pierbench -experiment completion
//	pierbench -experiment all
//
// With -json out.json every experiment additionally records
// machine-readable results (wall ns, rows/sec where meaningful,
// routed messages, allocs) — the format BENCH_PR4.json snapshots so
// the perf trajectory has committed data points.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/pier"
)

// expResult is one experiment's machine-readable record.
type expResult struct {
	Name string `json:"name"`
	// WallNS is the experiment's wall time (whole run, including
	// cluster setup — deployment-scale, not a microbenchmark).
	WallNS int64 `json:"wall_ns"`
	// Allocs is the heap allocation count over the run.
	Allocs uint64 `json:"allocs"`
	// Metrics carries the experiment's own numbers: ns/op, rows/sec,
	// routed messages, allocs/op, per-mode counters.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// recorder accumulates experiment records for -json output.
type recorder struct {
	results []*expResult
	cur     *expResult
}

// metric records one named value on the current experiment.
func (r *recorder) metric(name string, v float64) {
	if r == nil || r.cur == nil {
		return
	}
	if r.cur.Metrics == nil {
		r.cur.Metrics = make(map[string]float64)
	}
	r.cur.Metrics[name] = v
}

func main() {
	log.SetFlags(0)
	experiment := flag.String("experiment", "all", "which experiment(s) to run (comma-separated, or \"all\")")
	n := flag.Int("n", 0, "cluster size (0 = experiment default)")
	seed := flag.Int64("seed", 1, "simulation seed")
	jsonOut := flag.String("json", "", "write machine-readable results to this file")
	flag.Parse()

	rec := &recorder{}
	run := func(name string, fn func() error) {
		fmt.Printf("\n===== %s =====\n", name)
		rec.cur = &expResult{Name: name}
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&m1)
		rec.cur.WallNS = wall.Nanoseconds()
		rec.cur.Allocs = m1.Mallocs - m0.Mallocs
		rec.results = append(rec.results, rec.cur)
		rec.cur = nil
		fmt.Printf("(experiment wall time %v)\n", wall.Round(time.Millisecond))
	}

	selected := make(map[string]bool)
	for _, name := range strings.Split(*experiment, ",") {
		if name = strings.TrimSpace(name); name != "" {
			selected[name] = true
		}
	}
	all := selected["all"]
	want := func(name string) bool { return all || selected[name] }
	if want("figure1") {
		run("figure1", func() error {
			return figure1(*n, *seed)
		})
	}
	if want("table1") {
		run("table1", func() error {
			return table1(*n, *seed, rec)
		})
	}
	if want("hops") {
		run("hops", func() error {
			return hops(*seed, rec)
		})
	}
	if want("aggtree") {
		run("aggtree", func() error {
			return aggtree(*n, *seed, rec)
		})
	}
	if want("joins") {
		run("joins", func() error {
			return joins(*n, *seed, rec)
		})
	}
	if want("survival") {
		run("survival", func() error {
			return survival(*n, *seed)
		})
	}
	if want("churn") {
		run("churn", func() error {
			return churn(*n, *seed, rec)
		})
	}
	if want("search") {
		run("search", func() error {
			return searchCmp(*n, *seed, rec)
		})
	}
	if want("recursive") {
		run("recursive", func() error {
			return recursive(*n, *seed, rec)
		})
	}
	if want("batching") {
		run("batching", func() error {
			return batching(*n, *seed, rec)
		})
	}
	if want("multiway") {
		run("multiway", func() error {
			return multiway(*n, *seed, rec)
		})
	}
	if want("analyze") {
		run("analyze", func() error {
			return analyze(*n, *seed, rec)
		})
	}
	if want("spill") {
		run("spill", func() error {
			return spillSweep(*n, *seed, rec)
		})
	}
	if want("overlay") {
		run("overlay", func() error {
			return overlay(*n, *seed)
		})
	}
	if want("explain") {
		run("explain", func() error {
			return explainAnalyze(*n, *seed)
		})
	}
	if want("localpipe") {
		run("localpipe", func() error {
			return localpipe(rec)
		})
	}
	if want("obs") {
		run("obs", func() error {
			return obsOverhead(rec)
		})
	}
	if want("serve") {
		run("serve", func() error {
			return serve(*n, *seed, rec)
		})
	}
	if want("completion") {
		run("completion", func() error {
			return completion(*seed, rec)
		})
	}

	if *jsonOut != "" {
		payload := struct {
			GoVersion  string       `json:"go_version"`
			GOMAXPROCS int          `json:"gomaxprocs"`
			When       string       `json:"when"`
			Results    []*expResult `json:"results"`
		}{
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			When:       time.Now().UTC().Format(time.RFC3339),
			Results:    rec.results,
		}
		buf, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s (%d experiments)\n", *jsonOut, len(rec.results))
	}
}

// localpipe measures the local-execution join hot path (no network)
// tuple-at-a-time vs vectorized — ns/op, rows/sec, and allocs/op for
// the batch-at-a-time speedup BENCH_PR4.json tracks.
func localpipe(rec *recorder) error {
	const nLeft, nRight = 20000, 1000
	wl := bench.NewLocalJoinWorkload(nLeft, nRight)
	fmt.Printf("%-12s %14s %14s %12s %12s\n", "mode", "ns/op", "rows/sec", "allocs/op", "B/op")
	for _, mode := range []struct {
		name     string
		bs, wrks int
	}{
		{"scalar", 1, 1},
		{"vectorized", 256, 4},
	} {
		mode := mode
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := wl.Run(mode.bs, mode.wrks); err != nil {
					b.Fatal(err)
				}
			}
		})
		rowsPerSec := float64(nLeft+nRight) / (float64(r.NsPerOp()) / 1e9)
		fmt.Printf("%-12s %14d %14.0f %12d %12d\n",
			mode.name, r.NsPerOp(), rowsPerSec, r.AllocsPerOp(), r.AllocedBytesPerOp())
		rec.metric(mode.name+".ns/op", float64(r.NsPerOp()))
		rec.metric(mode.name+".rows/sec", rowsPerSec)
		rec.metric(mode.name+".allocs/op", float64(r.AllocsPerOp()))
		rec.metric(mode.name+".bytes/op", float64(r.AllocedBytesPerOp()))
	}
	return nil
}

// obsOverhead measures the cost of the obs hot-path instrumentation
// (registry-backed counters and histograms at every ship batch and
// result row) on the local join hot path: the same workload runs bare
// and instrumented, and the delta is the overhead budget DESIGN.md
// promises (≤3%; the experiment errors only past 10% to leave noise
// headroom on loaded CI machines).
func obsOverhead(rec *recorder) error {
	const nLeft, nRight = 20000, 1000
	wl := bench.NewLocalJoinWorkload(nLeft, nRight)
	reg := obs.New()
	measure := func(fn func() (int, error)) (*testing.BenchmarkResult, error) {
		var inner error
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fn(); err != nil {
					inner = err
					b.Fatal(err)
				}
			}
		})
		return &r, inner
	}
	// Interleave-free A/B: warm both paths once, then time each.
	if _, err := wl.Run(256, 4); err != nil {
		return err
	}
	if _, err := wl.RunInstrumented(256, 4, reg); err != nil {
		return err
	}
	base, err := measure(func() (int, error) { return wl.Run(256, 4) })
	if err != nil {
		return err
	}
	inst, err := measure(func() (int, error) { return wl.RunInstrumented(256, 4, reg) })
	if err != nil {
		return err
	}
	overhead := (float64(inst.NsPerOp()) - float64(base.NsPerOp())) / float64(base.NsPerOp()) * 100
	fmt.Printf("%-14s %14s\n", "mode", "ns/op")
	fmt.Printf("%-14s %14d\n", "bare", base.NsPerOp())
	fmt.Printf("%-14s %14d\n", "instrumented", inst.NsPerOp())
	fmt.Printf("instrumentation overhead: %.2f%% (budget ≤3%%)\n", overhead)
	rec.metric("base_ns_op", float64(base.NsPerOp()))
	rec.metric("obs_ns_op", float64(inst.NsPerOp()))
	rec.metric("overhead_pct", overhead)
	if series := len(reg.Names()); series == 0 {
		return fmt.Errorf("instrumented run registered no series")
	}
	if overhead > 10 {
		return fmt.Errorf("instrumentation overhead %.2f%% exceeds even the 10%% noise ceiling", overhead)
	}
	return nil
}

func explainAnalyze(n int, seed int64) error {
	rows, report, err := bench.ExplainAnalyze(n, seed)
	if err != nil {
		return err
	}
	fmt.Print(report)
	fmt.Printf("(%d result rows)\n", rows)
	return nil
}

func multiway(n int, seed int64, rec *recorder) error {
	results, err := bench.MultiwayJoin(n, 8, seed)
	if err != nil {
		return err
	}
	for _, r := range results {
		if r.Plan != "" {
			fmt.Printf("optimizer plan:\n%s", r.Plan)
		}
	}
	fmt.Printf("%-12s %8s %10s %12s %18s\n", "mode", "rows", "msgs", "bytes", "matches baseline")
	for _, r := range results {
		fmt.Printf("%-12s %8d %10d %12d %18v\n", r.Mode, r.Rows, r.Msgs, r.Bytes, r.MatchesBaseline)
		if !r.MatchesBaseline {
			return fmt.Errorf("mode %s diverged from the single-node baseline executor", r.Mode)
		}
		rec.metric("rows."+r.Mode, float64(r.Rows))
		rec.metric("msgs."+r.Mode, float64(r.Msgs))
	}
	return nil
}

// analyze runs the distributed-ANALYZE experiment: per-table
// measurement cost (latency + messages vs table size), estimate
// accuracy against the known truth, and optimizer steering — the
// measured/gossiped statistics must pick the hand-declared baseline's
// join order (byte-identical rows) where coarse defaults pick a
// costlier one.
func analyze(n int, seed int64, rec *recorder) error {
	out, err := bench.AnalyzeStats(n, 0, 0, 0, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %10s %10s %8s %12s %10s %12s\n",
		"table", "true rows", "est rows", "factor", "latency", "msgs", "bytes")
	for _, c := range out.Costs {
		fmt.Printf("%-8s %10d %10d %8.3f %12v %10d %12d\n",
			c.Table, c.TrueRows, c.EstRows, c.WithinFactor(),
			c.Latency.Round(time.Millisecond), c.Msgs, c.Bytes)
		rec.metric("analyze-ms."+c.Table, float64(c.Latency.Milliseconds()))
		rec.metric("analyze-msgs."+c.Table, float64(c.Msgs))
		rec.metric("est-rows."+c.Table, float64(c.EstRows))
		rec.metric("true-rows."+c.Table, float64(c.TrueRows))
		if c.WithinFactor() > 2 {
			return fmt.Errorf("%s estimate %d vs true %d beyond 2x", c.Table, c.EstRows, c.TrueRows)
		}
	}
	fmt.Printf("\nplan under defaults:  %s  (%d tuples moved)\n", out.DefaultsPlan, out.DefaultsWork)
	fmt.Printf("plan under declared:  %s  (%d tuples moved)\n", out.DeclaredPlan, out.DeclaredWork)
	fmt.Printf("plan under measured:  %s  (%d tuples moved, stats %s)\n", out.MeasuredPlan, out.MeasuredWork, out.GossipSource)
	fmt.Printf("plans match: %v; rows byte-identical across regimes: %v (%d rows)\n",
		out.PlansMatch, out.RowsMatch, out.Rows)
	rec.metric("query-work.defaults", float64(out.DefaultsWork))
	rec.metric("query-work.declared", float64(out.DeclaredWork))
	rec.metric("query-work.measured", float64(out.MeasuredWork))
	rec.metric("query-msgs.defaults", float64(out.DefaultsMsgs))
	rec.metric("query-msgs.declared", float64(out.DeclaredMsgs))
	rec.metric("query-msgs.measured", float64(out.MeasuredMsgs))
	if !out.PlansMatch {
		return fmt.Errorf("measured plan %q != declared plan %q", out.MeasuredPlan, out.DeclaredPlan)
	}
	if !out.RowsMatch {
		return fmt.Errorf("result rows diverged across statistics regimes")
	}
	return nil
}

func spillSweep(n int, seed int64, rec *recorder) error {
	out, err := bench.SpillSweep(minInt(n, 4), 0, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %12s %12s %12s %8s %8s %8s\n",
		"budget", "wall", "peak mem", "spilled", "passes", "rows", "match")
	for _, p := range out.Points {
		budget := "unlimited"
		if p.Budget > 0 {
			budget = fmt.Sprintf("%dKB", p.Budget>>10)
		}
		fmt.Printf("%-10s %12v %12d %12d %8d %8d %8v\n",
			budget, p.Wall.Round(time.Millisecond), p.PeakMem, p.Spilled,
			p.Passes, p.Rows, p.RowsMatch)
		rec.metric("wall-ms."+budget, float64(p.Wall.Milliseconds()))
		rec.metric("peak-mem."+budget, float64(p.PeakMem))
		rec.metric("spilled."+budget, float64(p.Spilled))
		rec.metric("passes."+budget, float64(p.Passes))
		if !p.RowsMatch {
			return fmt.Errorf("budget %s: rows diverged from centralized baseline", budget)
		}
		if p.Budget > 0 && p.PeakMem > 4*uint64(p.Budget) {
			return fmt.Errorf("budget %s: peak resident %d beyond 4x budget", budget, p.PeakMem)
		}
	}
	fmt.Printf("unbounded build state: %d bytes\n", out.BuildBytes)
	rec.metric("build-bytes", float64(out.BuildBytes))
	return nil
}

func batching(n int, seed int64, rec *recorder) error {
	results, err := bench.RouteBatchingJoin(n, 1000, 5, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %8s %12s %10s %12s %10s %14s\n",
		"mode", "rows", "routed msgs", "msgs", "bytes", "frames", "bytes/tuple")
	for _, r := range results {
		fmt.Printf("%-10s %8d %12d %10d %12d %10d %14.1f\n",
			r.Mode, r.Rows, r.RoutedMsgs, r.Msgs, r.Bytes, r.Frames, r.BytesPerTuple)
		rec.metric("routed-msgs."+r.Mode, float64(r.RoutedMsgs))
		rec.metric("rows."+r.Mode, float64(r.Rows))
	}
	if !results[0].SameRows(results[1]) {
		return fmt.Errorf("batched and unbatched runs returned different rows")
	}
	reduction := float64(results[1].RoutedMsgs) / float64(results[0].RoutedMsgs)
	fmt.Printf("routed-message reduction: %.1fx\n", reduction)
	rec.metric("routed-msg-reduction", reduction)
	return nil
}

func figure1(n int, seed int64) error {
	series, err := bench.Figure1(bench.Figure1Config{
		N: n, Seed: seed,
		Window: time.Second, Slide: 500 * time.Millisecond,
		Run: 12 * time.Second, FailAt: 4 * time.Second,
		RecoverAt: 8 * time.Second, FailCount: maxInt(n, 24) / 4,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %12s %12s %12s\n", "t", "SUM(rate)", "responding", "fraction")
	for _, p := range series {
		fmt.Printf("%-8v %12.1f %12d %12.3f\n",
			p.T.Round(100*time.Millisecond), p.Sum, p.Responding, p.Fraction())
	}
	return nil
}

func table1(n int, seed int64, rec *recorder) error {
	res, err := bench.Table1(n, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %-40s %10s %10s\n", "Rule", "Rule Description", "Hits", "Paper")
	for i, row := range res.Rows {
		paper := int64(-1)
		if i < len(monitor.Table1Rules) {
			paper = monitor.Table1Rules[i].Hits
		}
		fmt.Printf("%-6d %-40s %10d %10d\n", row.Rule, row.Descr, row.Hits, paper)
	}
	fmt.Printf("query time %v, %d network messages\n", res.Duration.Round(time.Millisecond), res.Msgs)
	rec.metric("query-ms", float64(res.Duration.Milliseconds()))
	rec.metric("msgs", float64(res.Msgs))
	return nil
}

func hops(seed int64, rec *recorder) error {
	points, err := bench.ScalingHops([]int{16, 32, 64, 128}, 50, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %10s %10s\n", "N", "mean hops", "log2(N)")
	for _, p := range points {
		fmt.Printf("%-6d %10.2f %10.2f\n", p.N, p.MeanHops, math.Log2(float64(p.N)))
		rec.metric(fmt.Sprintf("hops.n%d", p.N), p.MeanHops)
	}
	return nil
}

func aggtree(n int, seed int64, rec *recorder) error {
	results, err := bench.AggregationComparison(n, 20, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-20s %10s %12s %12s %14s\n", "mode", "msgs", "bytes", "root-in-msgs", "root-in-bytes")
	for _, r := range results {
		fmt.Printf("%-20s %10d %12d %12d %14d\n", r.Mode, r.Msgs, r.Bytes, r.RootInMsgs, r.RootInBytes)
		rec.metric("root-in-bytes."+r.Mode, float64(r.RootInBytes))
	}
	return nil
}

func joins(n int, seed int64, rec *recorder) error {
	results, err := bench.JoinStrategies(n, 10, 200, 0.1, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %10s %12s %8s\n", "strategy", "msgs", "bytes", "rows")
	for _, r := range results {
		fmt.Printf("%-12s %10d %12d %8d\n", r.Strategy, r.Msgs, r.Bytes, r.Rows)
		rec.metric("msgs."+r.Strategy, float64(r.Msgs))
		rec.metric("rows."+r.Strategy, float64(r.Rows))
	}
	return nil
}

// survival is the DHT data-survival experiment (items alive after a
// mass crash, by replica count).
func survival(n int, seed int64) error {
	results, err := bench.ChurnSurvival(n, 60, 0, []int{-1, 1, 2, 4}, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %10s %10s\n", "replicas", "survived", "fraction")
	for _, r := range results {
		reps := r.Replicas
		if reps < 0 {
			reps = 0
		}
		fmt.Printf("%-10d %10d %9.0f%%\n", reps, r.Survived, 100*r.SurvivedFrac)
	}
	return nil
}

// churn is the query-under-churn experiment: one-shot queries against
// clusters flapping at scripted rates, recording success rate,
// coverage distribution, and completion latency against the
// zero-churn baseline cell of the same size.
func churn(n int, seed int64, rec *recorder) error {
	out, err := bench.ChurnQuery(bench.ChurnQueryConfig{N: n, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %-6s %10s %10s %10s %10s %10s %10s   %s\n",
		"nodes", "churn", "queries", "ok", "cov mean", "cov min", "p50", "p95", "reasons")
	for _, cell := range out.Cells {
		fmt.Printf("%-6d %-6s %10d %10d %10.3f %10.3f %10v %10v   %s\n",
			cell.N, cell.Level, cell.Queries, cell.Succeeded,
			cell.CoverageMean, cell.CoverageMin,
			cell.P50.Round(time.Millisecond), cell.P95.Round(time.Millisecond),
			bench.ReasonHistogram(cell.Reasons))
		tag := fmt.Sprintf(".%d.%s", cell.N, cell.Level)
		rec.metric("churn-ok"+tag, float64(cell.Succeeded))
		rec.metric("churn-queries"+tag, float64(cell.Queries))
		rec.metric("churn-cov-mean"+tag, cell.CoverageMean)
		rec.metric("churn-cov-min"+tag, cell.CoverageMin)
		rec.metric("churn-p50-ms"+tag, float64(cell.P50.Milliseconds()))
		rec.metric("churn-p95-ms"+tag, float64(cell.P95.Milliseconds()))
		rec.metric("churn-eos"+tag, float64(cell.Reasons[pier.ReasonEOS]))
		rec.metric("churn-degraded"+tag, float64(cell.Reasons[pier.ReasonChurnDegraded]))
		if cell.Succeeded == 0 {
			return fmt.Errorf("n=%d level=%s: no query succeeded", cell.N, cell.Level)
		}
		if cell.Level == "none" {
			if cell.CoverageMin != 1 {
				return fmt.Errorf("n=%d zero-churn coverage dipped to %v", cell.N, cell.CoverageMin)
			}
			if got := cell.Reasons[pier.ReasonEOS]; got != cell.Succeeded {
				return fmt.Errorf("n=%d zero-churn: only %d/%d queries completed via eos: %v",
					cell.N, got, cell.Succeeded, cell.Reasons)
			}
		}
	}
	return nil
}

func searchCmp(n int, seed int64, rec *recorder) error {
	results, err := bench.SearchComparison(n, 40, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %10s %8s\n", "strategy", "msgs", "files")
	for _, r := range results {
		fmt.Printf("%-10s %10d %8d\n", r.Strategy, r.Msgs, r.Files)
		rec.metric("msgs."+r.Strategy, float64(r.Msgs))
	}
	return nil
}

func recursive(n int, seed int64, rec *recorder) error {
	res, err := bench.RecursiveTopology(n, 8, seed)
	if err != nil {
		return err
	}
	fmt.Printf("closure facts %d (expected %d), %d messages, SQL agreement: %v\n",
		res.Facts, res.Expected, res.Msgs, res.AgreeSQL)
	rec.metric("msgs", float64(res.Msgs))
	return nil
}

func overlay(n int, seed int64) error {
	results, err := bench.OverlayAblation(n, 40, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %10s %14s %8s\n", "overlay", "mean hops", "maintenance", "SUM ok")
	for _, r := range results {
		fmt.Printf("%-10s %10.2f %14d %8v\n", r.Overlay, r.MeanHops, r.Maintenance, r.SumOK)
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// serve runs the query-service benchmark: concurrent TCP clients
// against one pierd front door, then the shared-scan on/off
// comparison for concurrent continuous queries.
func serve(n int, seed int64, rec *recorder) error {
	out, err := bench.Serve(bench.ServeConfig{N: n, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %10s %10s %10s %10s %10s %10s\n",
		"clients", "queries", "rejected", "qps", "p50", "p95", "p99")
	for _, tier := range out.Tiers {
		fmt.Printf("%-8d %10d %10d %10.1f %10v %10v %10v\n",
			tier.Clients, tier.Queries, tier.Rejected, tier.QPS,
			tier.P50.Round(time.Millisecond), tier.P95.Round(time.Millisecond),
			tier.P99.Round(time.Millisecond))
		tag := fmt.Sprintf(".%d", tier.Clients)
		rec.metric("serve-qps"+tag, tier.QPS)
		rec.metric("serve-p50-ms"+tag, float64(tier.P50.Milliseconds()))
		rec.metric("serve-p95-ms"+tag, float64(tier.P95.Milliseconds()))
		rec.metric("serve-p99-ms"+tag, float64(tier.P99.Milliseconds()))
		rec.metric("serve-rejected"+tag, float64(tier.Rejected))
		if tier.Queries == 0 {
			return fmt.Errorf("tier %d completed no queries", tier.Clients)
		}
	}
	st := out.CacheStats
	fmt.Printf("\nplan cache: %d hits, %d misses (hit rate %.0f%%)\n",
		st.Hits, st.Misses, st.HitRate()*100)
	rec.metric("serve-cache-hit-rate", st.HitRate())
	if st.HitRate() <= 0.9 {
		return fmt.Errorf("plan cache hit rate %.2f under the repeated workload, want > 0.90", st.HitRate())
	}

	fmt.Printf("\n%-10s %12s %12s %12s %12s\n",
		"sharing", "subscribers", "queries", "attach", "2 windows")
	for _, m := range []bench.ServeSharedMode{out.SharedOn, out.SharedOff} {
		name := "dedicated"
		if m.Shared {
			name = "shared"
		}
		fmt.Printf("%-10s %12d %12d %12v %12v  (%d/%d delivered)\n",
			name, m.Subscribers, m.Coordinated,
			m.AttachWall.Round(time.Millisecond), m.DeliverWall.Round(time.Millisecond),
			m.Delivered, m.Subscribers)
		rec.metric("serve-"+name+"-coordinated", float64(m.Coordinated))
		rec.metric("serve-"+name+"-attach-ms", float64(m.AttachWall.Milliseconds()))
		rec.metric("serve-"+name+"-delivered", float64(m.Delivered))
	}
	if out.SharedOn.Coordinated != 1 {
		return fmt.Errorf("shared mode coordinated %d underlying queries, want 1", out.SharedOn.Coordinated)
	}
	if out.SharedOn.Delivered < out.SharedOn.Subscribers {
		return fmt.Errorf("shared mode delivered to %d/%d subscribers",
			out.SharedOn.Delivered, out.SharedOn.Subscribers)
	}
	return nil
}

// completion compares one-shot query latency under deterministic EOS
// completion vs the quiescence timer it replaced, at n=16 and n=32.
func completion(seed int64, rec *recorder) error {
	out, err := bench.Completion(bench.CompletionConfig{Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %-12s %10s %10s %10s   %s\n",
		"nodes", "mode", "queries", "p50", "p95", "reasons")
	for _, sz := range out.Sizes {
		for _, m := range []bench.CompletionMode{sz.EOS, sz.Timer} {
			fmt.Printf("%-6d %-12s %10d %10v %10v   %v\n",
				sz.N, m.Mode, m.Queries,
				m.P50.Round(time.Millisecond), m.P95.Round(time.Millisecond), m.Reasons)
			tag := fmt.Sprintf(".%d.%s", sz.N, m.Mode)
			rec.metric("completion-p50-ms"+tag, float64(m.P50.Milliseconds()))
			rec.metric("completion-p95-ms"+tag, float64(m.P95.Milliseconds()))
		}
		fmt.Printf("       p50 speedup %.1fx\n", sz.Speedup)
		rec.metric(fmt.Sprintf("completion-speedup.%d", sz.N), sz.Speedup)
		// The happy path must complete deterministically: an idle
		// cluster has no churn or loss for the fallback to absorb.
		if got := sz.EOS.Reasons[pier.ReasonEOS]; got != sz.EOS.Queries {
			return fmt.Errorf("n=%d: only %d/%d EOS-mode queries completed with reason %q: %v",
				sz.N, got, sz.EOS.Queries, pier.ReasonEOS, sz.EOS.Reasons)
		}
	}
	return nil
}

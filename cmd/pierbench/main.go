// Command pierbench regenerates the paper's evaluation artifacts and
// the supporting shape experiments over the simulated testbed.
//
// Usage:
//
//	pierbench -experiment figure1 [-n 24] [-seed 1]
//	pierbench -experiment table1
//	pierbench -experiment hops
//	pierbench -experiment aggtree
//	pierbench -experiment joins
//	pierbench -experiment churn
//	pierbench -experiment search
//	pierbench -experiment recursive
//	pierbench -experiment batching
//	pierbench -experiment multiway
//	pierbench -experiment overlay
//	pierbench -experiment explain
//	pierbench -experiment all
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/bench"
	"repro/internal/monitor"
)

func main() {
	log.SetFlags(0)
	experiment := flag.String("experiment", "all", "which experiment to run")
	n := flag.Int("n", 0, "cluster size (0 = experiment default)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	run := func(name string, fn func() error) {
		fmt.Printf("\n===== %s =====\n", name)
		start := time.Now()
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("(experiment wall time %v)\n", time.Since(start).Round(time.Millisecond))
	}

	all := *experiment == "all"
	if all || *experiment == "figure1" {
		run("Figure 1: continuous SUM(rate) over responding nodes", func() error {
			return figure1(*n, *seed)
		})
	}
	if all || *experiment == "table1" {
		run("Table 1: network-wide top ten intrusion detection rules", func() error {
			return table1(*n, *seed)
		})
	}
	if all || *experiment == "hops" {
		run("S1: lookup hops vs network size (O(log n) routing)", func() error {
			return hops(*seed)
		})
	}
	if all || *experiment == "aggtree" {
		run("S2: in-network aggregation vs centralized collection", func() error {
			return aggtree(*n, *seed)
		})
	}
	if all || *experiment == "joins" {
		run("S3: join strategy costs", func() error {
			return joins(*n, *seed)
		})
	}
	if all || *experiment == "churn" {
		run("S4: data survival under churn vs replication factor", func() error {
			return churn(*n, *seed)
		})
	}
	if all || *experiment == "search" {
		run("S5: DHT keyword search vs flooding", func() error {
			return searchCmp(*n, *seed)
		})
	}
	if all || *experiment == "recursive" {
		run("S6: in-network recursive closure", func() error {
			return recursive(*n, *seed)
		})
	}
	if all || *experiment == "batching" {
		run("S7: route batching on the symmetric-hash rehash path", func() error {
			return batching(*n, *seed)
		})
	}
	if all || *experiment == "multiway" {
		run("Multiway: 3-table join with cost-based per-stage strategies", func() error {
			return multiway(*n, *seed)
		})
	}
	if all || *experiment == "overlay" {
		run("Ablation: Chord vs Kademlia", func() error {
			return overlay(*n, *seed)
		})
	}
	if all || *experiment == "explain" {
		run("EXPLAIN ANALYZE: distributed per-operator pipeline counters", func() error {
			return explainAnalyze(*n, *seed)
		})
	}
}

func explainAnalyze(n int, seed int64) error {
	rows, report, err := bench.ExplainAnalyze(n, seed)
	if err != nil {
		return err
	}
	fmt.Print(report)
	fmt.Printf("(%d result rows)\n", rows)
	return nil
}

func multiway(n int, seed int64) error {
	results, err := bench.MultiwayJoin(n, 8, seed)
	if err != nil {
		return err
	}
	for _, r := range results {
		if r.Plan != "" {
			fmt.Printf("optimizer plan:\n%s", r.Plan)
		}
	}
	fmt.Printf("%-12s %8s %10s %12s %18s\n", "mode", "rows", "msgs", "bytes", "matches baseline")
	for _, r := range results {
		fmt.Printf("%-12s %8d %10d %12d %18v\n", r.Mode, r.Rows, r.Msgs, r.Bytes, r.MatchesBaseline)
		if !r.MatchesBaseline {
			return fmt.Errorf("mode %s diverged from the single-node baseline executor", r.Mode)
		}
	}
	return nil
}

func batching(n int, seed int64) error {
	results, err := bench.RouteBatchingJoin(n, 1000, 5, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %8s %12s %10s %12s %10s %14s\n",
		"mode", "rows", "routed msgs", "msgs", "bytes", "frames", "bytes/tuple")
	for _, r := range results {
		fmt.Printf("%-10s %8d %12d %10d %12d %10d %14.1f\n",
			r.Mode, r.Rows, r.RoutedMsgs, r.Msgs, r.Bytes, r.Frames, r.BytesPerTuple)
	}
	if !results[0].SameRows(results[1]) {
		return fmt.Errorf("batched and unbatched runs returned different rows")
	}
	fmt.Printf("routed-message reduction: %.1fx\n",
		float64(results[1].RoutedMsgs)/float64(results[0].RoutedMsgs))
	return nil
}

func figure1(n int, seed int64) error {
	series, err := bench.Figure1(bench.Figure1Config{
		N: n, Seed: seed,
		Window: time.Second, Slide: 500 * time.Millisecond,
		Run: 12 * time.Second, FailAt: 4 * time.Second,
		RecoverAt: 8 * time.Second, FailCount: maxInt(n, 24) / 4,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %12s %12s %12s\n", "t", "SUM(rate)", "responding", "fraction")
	for _, p := range series {
		fmt.Printf("%-8v %12.1f %12d %12.3f\n",
			p.T.Round(100*time.Millisecond), p.Sum, p.Responding, p.Fraction())
	}
	return nil
}

func table1(n int, seed int64) error {
	res, err := bench.Table1(n, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %-40s %10s %10s\n", "Rule", "Rule Description", "Hits", "Paper")
	for i, row := range res.Rows {
		paper := int64(-1)
		if i < len(monitor.Table1Rules) {
			paper = monitor.Table1Rules[i].Hits
		}
		fmt.Printf("%-6d %-40s %10d %10d\n", row.Rule, row.Descr, row.Hits, paper)
	}
	fmt.Printf("query time %v, %d network messages\n", res.Duration.Round(time.Millisecond), res.Msgs)
	return nil
}

func hops(seed int64) error {
	points, err := bench.ScalingHops([]int{16, 32, 64, 128}, 50, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %10s %10s\n", "N", "mean hops", "log2(N)")
	for _, p := range points {
		fmt.Printf("%-6d %10.2f %10.2f\n", p.N, p.MeanHops, math.Log2(float64(p.N)))
	}
	return nil
}

func aggtree(n int, seed int64) error {
	results, err := bench.AggregationComparison(n, 20, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-20s %10s %12s %12s %14s\n", "mode", "msgs", "bytes", "root-in-msgs", "root-in-bytes")
	for _, r := range results {
		fmt.Printf("%-20s %10d %12d %12d %14d\n", r.Mode, r.Msgs, r.Bytes, r.RootInMsgs, r.RootInBytes)
	}
	return nil
}

func joins(n int, seed int64) error {
	results, err := bench.JoinStrategies(n, 10, 200, 0.1, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %10s %12s %8s\n", "strategy", "msgs", "bytes", "rows")
	for _, r := range results {
		fmt.Printf("%-12s %10d %12d %8d\n", r.Strategy, r.Msgs, r.Bytes, r.Rows)
	}
	return nil
}

func churn(n int, seed int64) error {
	results, err := bench.ChurnSurvival(n, 60, 0, []int{-1, 1, 2, 4}, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %10s %10s\n", "replicas", "survived", "fraction")
	for _, r := range results {
		reps := r.Replicas
		if reps < 0 {
			reps = 0
		}
		fmt.Printf("%-10d %10d %9.0f%%\n", reps, r.Survived, 100*r.SurvivedFrac)
	}
	return nil
}

func searchCmp(n int, seed int64) error {
	results, err := bench.SearchComparison(n, 40, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %10s %8s\n", "strategy", "msgs", "files")
	for _, r := range results {
		fmt.Printf("%-10s %10d %8d\n", r.Strategy, r.Msgs, r.Files)
	}
	return nil
}

func recursive(n int, seed int64) error {
	res, err := bench.RecursiveTopology(n, 8, seed)
	if err != nil {
		return err
	}
	fmt.Printf("closure facts %d (expected %d), %d messages, SQL agreement: %v\n",
		res.Facts, res.Expected, res.Msgs, res.AgreeSQL)
	return nil
}

func overlay(n int, seed int64) error {
	results, err := bench.OverlayAblation(n, 40, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %10s %14s %8s\n", "overlay", "mean hops", "maintenance", "SUM ok")
	for _, r := range results {
		fmt.Printf("%-10s %10.2f %14d %8v\n", r.Overlay, r.MeanHops, r.Maintenance, r.SumOK)
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Command pierd runs one PIER node as a network query service: the
// node speaks UDP to its overlay peers while clients connect over TCP
// with a line-oriented JSON protocol (one request object per line,
// responses matched by id, subscription windows pushed as events).
//
// Start a bootstrap node serving clients on :7070:
//
//	pierd -listen 127.0.0.1:7000 -serve 127.0.0.1:7070
//
// Join more nodes (each is also a front door):
//
//	pierd -listen 127.0.0.1:7001 -serve 127.0.0.1:7071 -join 127.0.0.1:7000
//
// Talk to it with anything that can write JSON lines, e.g.:
//
//	printf '%s\n' \
//	  '{"id":1,"op":"create","table":"t","cols":["k:string","v:int"],"key":["k"]}' \
//	  '{"id":2,"op":"insert","table":"t","values":["a",1]}' \
//	  '{"id":3,"op":"query","sql":"SELECT COUNT(*) FROM t"}' | nc 127.0.0.1 7070
//
// Telemetry rides the same protocol: {"op":"metrics"} returns the
// node's Prometheus text exposition (plus a JSON series map),
// {"op":"trace","query":N} the assembled cross-node trace of a recent
// query (0 = most recent), and {"op":"events"} the structured event
// ring (admissions, completions, suspicions, spills, slow queries).
// -pprof optionally serves net/http/pprof.
//
// The engine layer in front of the node provides the plan cache,
// prepared statements, shared scans for concurrent continuous queries,
// and admission control: past -max-inflight concurrently executing
// queries, arrivals queue up to -queue-timeout and then shed with a
// typed "reject" field clients can back off on.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/pier"
	"repro/internal/server"
	"repro/internal/transport"
)

func main() {
	log.SetFlags(0)
	listen := flag.String("listen", "127.0.0.1:0", "UDP address for overlay traffic")
	serve := flag.String("serve", "127.0.0.1:7070", "TCP address for client connections")
	join := flag.String("join", "", "address of any existing node to join")
	overlayKind := flag.String("overlay", "chord", "overlay: chord, kademlia, or can")
	maxInflight := flag.Int("max-inflight", 64, "concurrently executing one-shot queries before arrivals queue")
	maxQueued := flag.Int("max-queued", 256, "queued queries before arrivals shed immediately")
	queueTimeout := flag.Duration("queue-timeout", time.Second, "max time a queued query waits for an execution slot")
	maxSubs := flag.Int("max-subscriptions", 256, "concurrently live continuous subscriptions")
	cacheSize := flag.Int("plan-cache", engine.DefaultPlanCacheSize, "plan cache capacity (compiled statements)")
	sharedScans := flag.Bool("shared-scans", true, "serve concurrent identical continuous queries from one scan/window pipeline")
	members := flag.Int("members", 0, "expected cluster size: enables deterministic EOS completion for one-shot queries (0 = quiescence timer only)")
	joinMem := flag.String("join-mem", "0", "per-stage join build-state memory budget, e.g. 64kb or 1mb (0 = unlimited, never spill)")
	spillDir := flag.String("spill-dir", "", "directory for join spill temp files (default: the system temp dir)")
	switchFactor := flag.Float64("switch-factor", 0, "switch a fetch-matches join to rehashing mid-flight when observed rows exceed the estimate by this factor (0 = default 4, negative = never switch)")
	slowQuery := flag.Duration("slow-query", time.Second, "log completed queries slower than this into the event ring (negative disables)")
	pprofAddr := flag.String("pprof", "", "optional net/http/pprof listen address, e.g. 127.0.0.1:6060 (empty disables)")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries the pprof handlers via the blank import.
			log.Printf("pprof: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	tr, err := transport.ListenUDP(*listen)
	if err != nil {
		log.Fatal(err)
	}
	cfg := pier.Config{Overlay: *overlayKind, Members: *members}
	cfg.SpillDir = *spillDir
	cfg.SwitchFactor = *switchFactor
	if cfg.JoinMemBudget, err = pier.ParseMemSize(*joinMem); err != nil {
		log.Fatal(err)
	}
	node, err := pier.NewNode(tr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer node.Stop()
	fmt.Printf("pierd node on %s (overlay: %s)\n", node.Addr(), *overlayKind)
	if *join != "" {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := node.Join(ctx, *join)
		cancel()
		if err != nil {
			log.Fatalf("join %s: %v", *join, err)
		}
		fmt.Printf("joined overlay via %s\n", *join)
	}

	svc := engine.New(node, engine.Config{
		MaxInFlight:      *maxInflight,
		MaxQueued:        *maxQueued,
		QueueTimeout:     *queueTimeout,
		MaxSubscriptions: *maxSubs,
		PlanCacheSize:    *cacheSize,
		SharedScans:      *sharedScans,
		SlowQuery:        *slowQuery,
	})
	defer svc.Close()

	ln, err := net.Listen("tcp", *serve)
	if err != nil {
		log.Fatal(err)
	}
	srv := server.Serve(ln, svc)
	defer srv.Close()
	fmt.Printf("serving clients on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
}

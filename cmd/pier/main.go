// Command pier runs one PIER node over real UDP, with an interactive
// SQL shell — the multi-process deployment path (the simulated
// testbed used by tests and benchmarks lives in internal/simnet).
//
// Start a bootstrap node:
//
//	pier -listen 127.0.0.1:7000
//
// Join more nodes:
//
//	pier -listen 127.0.0.1:7001 -join 127.0.0.1:7000
//
// Shell commands:
//
//	\create <table> <col:type,...> key <col,...> [ttl <dur>]
//	\insert <table> <val,...>     -- into this node's local partition
//	\put <table> <val,...>        -- into the DHT (placed by key)
//	\tables                        -- list defined tables
//	\stats                         -- print the catalog statistics (source + age)
//	\stats <table>                 -- print one table's statistics
//	\stats <table> <rows> [col=distinct ...]  -- declare optimizer statistics
//	\analyze [table ...]           -- measure statistics from the DHT (ANALYZE)
//	\explain SELECT ...            -- print the distributed plan (no execution)
//	\prepare <name> SELECT ...     -- name a statement (compiles into the plan cache)
//	\exec <name>                   -- run a prepared statement
//	\cache                         -- plan cache counters and entries
//	\metrics [prefix]              -- node metrics in Prometheus text form
//	\trace [qid]                   -- cross-node TRACE tree of a recent query (default: last)
//	\events                        -- the structured event ring (newest last)
//	\quit
//	SELECT ...                     -- one-shot query
//	ANALYZE [table, ...]           -- the SQL form of \analyze
//	SELECT ... WINDOW 5 s SLIDE 1 s  -- continuous (prints windows; \stop ends it)
//
// With -explain, every one-shot query runs as EXPLAIN ANALYZE and
// prints the per-operator pipeline counters gathered from every node.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/pier"
	"repro/internal/plan"
	"repro/internal/transport"
	"repro/internal/tuple"
)

func main() {
	log.SetFlags(0)
	listen := flag.String("listen", "127.0.0.1:0", "UDP address to listen on")
	join := flag.String("join", "", "address of any existing node to join")
	overlayKind := flag.String("overlay", "chord", "overlay: chord, kademlia, or can")
	batchOn := flag.Bool("batch", true, "coalesce routed traffic (join rehash, aggregation partials, DHT puts) into per-destination frames")
	batchRecords := flag.Int("batch-records", 0, "flush a route batch at this record count (0 = default 64)")
	batchBytes := flag.Int("batch-bytes", 0, "flush a route batch at this payload byte budget (0 = default 8192)")
	batchDelay := flag.Duration("batch-delay", 0, "max time a record may wait in a route batch (0 = default 2ms; capped at a quarter of the quiescence horizon)")
	explain := flag.Bool("explain", false, "run one-shot queries as EXPLAIN ANALYZE: print the per-operator pipeline counters gathered from every node after the rows")
	batchSize := flag.Int("batch-size", 0, "vectorization width: tuples per dataflow batch message (0 = default 256, 1 = tuple-at-a-time)")
	scanParallel := flag.Int("scan-parallel", 0, "parallel partitioned-scan workers (0 = GOMAXPROCS)")
	members := flag.Int("members", 0, "expected cluster size: enables deterministic EOS completion for one-shot queries (0 = quiescence timer only)")
	joinMem := flag.String("join-mem", "0", "per-stage join build-state memory budget, e.g. 64kb or 1mb (0 = unlimited, never spill)")
	spillDir := flag.String("spill-dir", "", "directory for join spill temp files (default: the system temp dir)")
	switchFactor := flag.Float64("switch-factor", 0, "switch a fetch-matches join to rehashing mid-flight when observed rows exceed the estimate by this factor (0 = default 4, negative = never switch)")
	slowQuery := flag.Duration("slow-query", time.Second, "log completed queries slower than this into the event ring (negative disables)")
	pprofAddr := flag.String("pprof", "", "optional net/http/pprof listen address, e.g. 127.0.0.1:6060 (empty disables)")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries the pprof handlers via the blank import.
			log.Printf("pprof: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	tr, err := transport.ListenUDP(*listen)
	if err != nil {
		log.Fatal(err)
	}
	cfg := pier.Config{Overlay: *overlayKind}
	cfg.Batch.Disabled = !*batchOn
	cfg.Batch.MaxRecords = *batchRecords
	cfg.Batch.MaxBytes = *batchBytes
	cfg.Batch.MaxDelay = *batchDelay
	cfg.BatchSize = *batchSize
	cfg.ScanParallel = *scanParallel
	cfg.Members = *members
	if cfg.JoinMemBudget, err = pier.ParseMemSize(*joinMem); err != nil {
		log.Fatal(err)
	}
	cfg.SpillDir = *spillDir
	cfg.SwitchFactor = *switchFactor
	node, err := pier.NewNode(tr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer node.Stop()
	fmt.Printf("pier node listening on %s (overlay: %s)\n", node.Addr(), *overlayKind)
	if *join != "" {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := node.Join(ctx, *join)
		cancel()
		if err != nil {
			log.Fatalf("join %s: %v", *join, err)
		}
		fmt.Printf("joined overlay via %s\n", *join)
	}

	svc := engine.New(node, engine.Config{SlowQuery: *slowQuery})
	defer svc.Close()
	shell(svc, *explain)
}

func shell(svc *engine.Service, explain bool) {
	node := svc.Node()
	sess := svc.Open()
	defer sess.Close()
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("pier> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\quit` || line == `\q`:
			return
		case line == `\tables`:
			for _, name := range node.Catalog().Names() {
				tbl, _ := node.Catalog().Lookup(name)
				fmt.Printf("  %s (%d cols, ttl %v)\n", name, tbl.Schema.Arity(), tbl.TTL)
			}
		case strings.HasPrefix(line, `\create `):
			if err := doCreate(node, strings.TrimPrefix(line, `\create `)); err != nil {
				fmt.Println("error:", err)
			}
		case strings.HasPrefix(line, `\insert `):
			if err := doInsert(node, strings.TrimPrefix(line, `\insert `), false); err != nil {
				fmt.Println("error:", err)
			}
		case strings.HasPrefix(line, `\put `):
			if err := doInsert(node, strings.TrimPrefix(line, `\put `), true); err != nil {
				fmt.Println("error:", err)
			}
		case line == `\stats`:
			printStats(node, node.Catalog().Names())
		case strings.HasPrefix(line, `\stats `):
			if err := doStats(node, strings.TrimPrefix(line, `\stats `)); err != nil {
				fmt.Println("error:", err)
			}
		case line == `\analyze`:
			doAnalyze(node, nil)
		case strings.HasPrefix(line, `\analyze `):
			doAnalyze(node, strings.Fields(strings.TrimPrefix(line, `\analyze `)))
		case strings.HasPrefix(line, `\explain `):
			plan, err := sess.Explain(strings.TrimPrefix(line, `\explain `))
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Print(plan)
			}
		case strings.HasPrefix(line, `\prepare `):
			if err := doPrepare(sess, strings.TrimPrefix(line, `\prepare `), explain); err != nil {
				fmt.Println("error:", err)
			}
		case strings.HasPrefix(line, `\exec `):
			runPrepared(sess, strings.TrimSpace(strings.TrimPrefix(line, `\exec `)), explain)
		case line == `\cache`:
			printCache(svc)
		case line == `\metrics`:
			fmt.Print(node.Obs().RenderProm())
		case strings.HasPrefix(line, `\metrics `):
			printMetrics(node, strings.TrimSpace(strings.TrimPrefix(line, `\metrics `)))
		case line == `\trace`:
			printTrace(node, 0)
		case strings.HasPrefix(line, `\trace `):
			qid, err := strconv.ParseUint(strings.TrimSpace(strings.TrimPrefix(line, `\trace `)), 10, 64)
			if err != nil {
				fmt.Println("error: usage: \\trace [qid]")
			} else {
				printTrace(node, qid)
			}
		case line == `\events`:
			for _, ev := range node.Events().Snapshot() {
				fmt.Printf("  %s %-4s %-16s q=%-6d %s\n",
					ev.Time.Format("15:04:05.000"), ev.Severity, ev.Kind, ev.Query, ev.Msg)
			}
		case strings.HasPrefix(strings.ToUpper(line), "SELECT") ||
			strings.HasPrefix(strings.ToUpper(line), "WITH") ||
			strings.HasPrefix(strings.ToUpper(line), "ANALYZE"):
			runQuery(sess, line, explain)
		default:
			fmt.Println("unrecognized command; try SELECT ..., ANALYZE, \\create, \\insert, \\put, \\tables, \\stats, \\analyze, \\explain, \\prepare, \\exec, \\cache, \\metrics, \\trace, \\events, \\quit")
		}
		fmt.Print("pier> ")
	}
}

// doCreate parses "\create name col:type,... key col,... [ttl dur]".
func doCreate(node *pier.Node, args string) error {
	fields := strings.Fields(args)
	if len(fields) < 2 {
		return fmt.Errorf("usage: \\create <table> <col:type,...> [key <col,...>] [ttl <dur>]")
	}
	name := fields[0]
	var cols []tuple.Column
	for _, part := range strings.Split(fields[1], ",") {
		ct := strings.SplitN(part, ":", 2)
		if len(ct) != 2 {
			return fmt.Errorf("column %q must be name:type", part)
		}
		var ty tuple.Type
		switch strings.ToLower(ct[1]) {
		case "string":
			ty = tuple.TString
		case "int":
			ty = tuple.TInt
		case "float":
			ty = tuple.TFloat
		case "bool":
			ty = tuple.TBool
		case "time":
			ty = tuple.TTime
		default:
			return fmt.Errorf("unknown type %q", ct[1])
		}
		cols = append(cols, tuple.Column{Name: ct[0], Type: ty})
	}
	var keyCols []string
	ttl := time.Minute
	for i := 2; i < len(fields); i++ {
		switch strings.ToLower(fields[i]) {
		case "key":
			if i+1 < len(fields) {
				keyCols = strings.Split(fields[i+1], ",")
				i++
			}
		case "ttl":
			if i+1 < len(fields) {
				d, err := time.ParseDuration(fields[i+1])
				if err != nil {
					return err
				}
				ttl = d
				i++
			}
		}
	}
	schema, err := tuple.NewSchema(name, cols, keyCols...)
	if err != nil {
		return err
	}
	return node.DefineTable(schema, ttl)
}

// printStats renders the catalog statistics table: effective stats
// per table with their provenance and age.
func printStats(node *pier.Node, tables []string) {
	if len(tables) == 0 {
		fmt.Println("(no tables defined)")
		return
	}
	fmt.Printf("%-16s %10s %-10s %-8s %s\n", "table", "rows", "source", "age", "distincts")
	for _, name := range tables {
		st, src, age := node.Catalog().StatsInfo(name)
		cols := make([]string, 0, len(st.Distinct))
		for c := range st.Distinct {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		parts := make([]string, len(cols))
		for i, c := range cols {
			parts[i] = fmt.Sprintf("%s=%d", c, st.Distinct[c])
		}
		ageText := "-"
		if age > 0 {
			ageText = age.Round(time.Second).String()
		}
		fmt.Printf("%-16s %10d %-10s %-8s %s\n", name, st.Rows, src, ageText, strings.Join(parts, " "))
	}
}

// doAnalyze runs the distributed ANALYZE and prints the measured
// statistics.
func doAnalyze(node *pier.Node, tables []string) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := node.Analyze(ctx, tables...)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	names := make([]string, 0, len(res.Tables))
	for _, t := range res.Tables {
		names = append(names, t.Table)
	}
	fmt.Printf("analyzed %d tables from %d participants in %v\n",
		len(res.Tables), res.Participants, res.Duration.Round(time.Millisecond))
	printStats(node, names)
}

// doStats parses "\stats <table> <rows> [col=distinct ...]" and
// declares planner statistics for the cost-based join optimizer;
// with just a table name it prints that table's statistics.
func doStats(node *pier.Node, args string) error {
	fields := strings.Fields(args)
	if len(fields) == 1 {
		if _, ok := node.Catalog().Lookup(fields[0]); !ok {
			return fmt.Errorf("unknown table %q", fields[0])
		}
		printStats(node, fields[:1])
		return nil
	}
	if len(fields) < 2 {
		return fmt.Errorf("usage: \\stats [<table> [<rows> [col=distinct ...]]]")
	}
	rows, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return fmt.Errorf("bad row count %q", fields[1])
	}
	st := catalog.TableStats{Rows: rows}
	for _, f := range fields[2:] {
		cd := strings.SplitN(f, "=", 2)
		if len(cd) != 2 {
			return fmt.Errorf("distinct spec %q must be col=count", f)
		}
		d, err := strconv.ParseInt(cd[1], 10, 64)
		if err != nil {
			return fmt.Errorf("bad distinct count %q", cd[1])
		}
		if st.Distinct == nil {
			st.Distinct = make(map[string]int64)
		}
		st.Distinct[cd[0]] = d
	}
	return node.SetTableStats(fields[0], st)
}

// doInsert parses "\insert table v1,v2,..." coercing values to the
// table's column types.
func doInsert(node *pier.Node, args string, viaDHT bool) error {
	fields := strings.SplitN(args, " ", 2)
	if len(fields) != 2 {
		return fmt.Errorf("usage: \\insert <table> <val,...>")
	}
	tbl, ok := node.Catalog().Lookup(fields[0])
	if !ok {
		return fmt.Errorf("unknown table %q", fields[0])
	}
	parts := strings.Split(fields[1], ",")
	if len(parts) != tbl.Schema.Arity() {
		return fmt.Errorf("table %s has %d columns", fields[0], tbl.Schema.Arity())
	}
	t := make(tuple.Tuple, len(parts))
	for i, raw := range parts {
		raw = strings.TrimSpace(raw)
		switch tbl.Schema.Columns[i].Type {
		case tuple.TString:
			t[i] = tuple.String(raw)
		case tuple.TInt:
			v, err := strconv.ParseInt(raw, 10, 64)
			if err != nil {
				return fmt.Errorf("column %d: %w", i, err)
			}
			t[i] = tuple.Int(v)
		case tuple.TFloat:
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return fmt.Errorf("column %d: %w", i, err)
			}
			t[i] = tuple.Float(v)
		case tuple.TBool:
			v, err := strconv.ParseBool(raw)
			if err != nil {
				return fmt.Errorf("column %d: %w", i, err)
			}
			t[i] = tuple.Bool(v)
		default:
			return fmt.Errorf("column %d: unsupported shell type", i)
		}
	}
	if viaDHT {
		return node.Publish(fields[0], t)
	}
	return node.PublishLocal(fields[0], t)
}

func runQuery(sess *engine.Session, sql string, explain bool) {
	if strings.Contains(strings.ToUpper(sql), "WINDOW") {
		runContinuous(sess, sql, explain)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := sess.QueryWithOptions(ctx, sql, plan.Options{Analyze: explain})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%v\n", res.Columns)
	for _, row := range res.Rows {
		fmt.Printf("  %v\n", row)
	}
	fmt.Printf("(%d rows, %d participants, %v%s%s)\n", len(res.Rows), res.Participants,
		res.Duration.Round(time.Millisecond), completionNote(res.Reason), coverageNote(res))
	if res.AnalyzeReport != "" {
		fmt.Print(res.AnalyzeReport)
	}
}

// completionNote renders the completion reason; anything other than a
// clean end-of-stream is flagged so a partial result set is visible as
// such in the shell.
func completionNote(reason string) string {
	switch reason {
	case "", pier.ReasonEOS:
		return ""
	case pier.ReasonQuietTimeout:
		return ", INCOMPLETE: quiet-timeout"
	case pier.ReasonChurnDegraded:
		return ", INCOMPLETE: churn-degraded"
	case pier.ReasonDeadline:
		return ", INCOMPLETE: deadline"
	default:
		return ", " + reason
	}
}

// coverageNote tags a result that reflects only part of the table
// partitions (members lost mid-query). Full coverage and untracked
// clusters (Coverage zero) print nothing.
func coverageNote(res *pier.Result) string {
	if res.Coverage <= 0 || res.Coverage >= 1 {
		return ""
	}
	return fmt.Sprintf(", COVERAGE %.0f%%", res.Coverage*100)
}

func runContinuous(sess *engine.Session, sql string, explain bool) {
	sub, err := sess.SubscribeWithOptions(context.Background(), sql,
		plan.Options{Analyze: explain})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer sub.Stop()
	fmt.Printf("%v  (continuous; showing 10 windows)\n", sub.Columns)
	for i := 0; i < 10; i++ {
		wr, ok := <-sub.Results()
		if !ok {
			break
		}
		for _, row := range wr.Rows {
			fmt.Printf("  [w%d] %v\n", wr.Seq, row)
		}
	}
	if explain {
		// Participants re-ship counter snapshots per window, so the
		// report covers the run so far — the long-running query's
		// EXPLAIN ANALYZE.
		if a := sub.Analysis(); a != nil {
			for _, op := range a.Ops {
				fmt.Printf("  %-24s %-14s nodes=%-3d in=%-8d out=%-8d\n",
					op.Stage, op.Op, op.Nodes, op.RowsIn, op.RowsOut)
			}
		}
	}
}

// doPrepare parses "\prepare name SELECT ..." and compiles the
// statement into the plan cache under that name.
func doPrepare(sess *engine.Session, args string, explain bool) error {
	fields := strings.SplitN(strings.TrimSpace(args), " ", 2)
	if len(fields) != 2 {
		return fmt.Errorf("usage: \\prepare <name> SELECT ...")
	}
	if err := sess.Prepare(fields[0], fields[1], plan.Options{Analyze: explain}); err != nil {
		return err
	}
	fmt.Printf("prepared %q\n", fields[0])
	return nil
}

// runPrepared executes a prepared statement (subscribing when it is
// continuous).
func runPrepared(sess *engine.Session, name string, explain bool) {
	for _, p := range sess.PreparedAll() {
		if p.Name != name {
			continue
		}
		if strings.Contains(strings.ToUpper(p.SQL), "WINDOW") {
			runContinuous(sess, p.SQL, explain)
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		res, err := sess.Exec(ctx, name)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%v\n", res.Columns)
		for _, row := range res.Rows {
			fmt.Printf("  %v\n", row)
		}
		fmt.Printf("(%d rows, %d participants, %v%s%s)\n", len(res.Rows), res.Participants,
			res.Duration.Round(time.Millisecond), completionNote(res.Reason), coverageNote(res))
		return
	}
	fmt.Printf("error: no prepared statement %q\n", name)
}

// printMetrics renders the registry in Prometheus text form, filtered
// to series whose name starts with prefix.
func printMetrics(node *pier.Node, prefix string) {
	for _, line := range strings.Split(node.Obs().RenderProm(), "\n") {
		if strings.HasPrefix(line, prefix) {
			fmt.Println(line)
		}
	}
}

// printTrace renders the cross-node TRACE tree of qid (0 = the most
// recently coordinated query).
func printTrace(node *pier.Node, qid uint64) {
	tr := node.LastTrace()
	if qid != 0 {
		tr = node.Trace(qid)
	}
	if tr == nil {
		fmt.Println("no trace (only queries coordinated by this node are traced; the ring keeps the last 16)")
		return
	}
	fmt.Print(tr.Render())
}

// printCache renders the plan cache counters and the live entries with
// the stats epoch each plan was compiled under.
func printCache(svc *engine.Service) {
	st := svc.Cache().Stats()
	fmt.Printf("plan cache: %d entries, %d hits, %d misses, %d evictions, %d invalidations (hit rate %.0f%%)\n",
		st.Entries, st.Hits, st.Misses, st.Evictions, st.Invalidations, st.HitRate()*100)
	for _, e := range svc.Cache().Snapshot() {
		key := e.Key
		if i := strings.LastIndex(key, "|strat="); i >= 0 {
			key = key[:i]
		}
		fmt.Printf("  epoch=%-4d hits=%-6d %dB  %s\n", e.Epoch, e.Hits, e.Bytes, key)
	}
}

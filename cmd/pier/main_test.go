package main

import (
	"testing"
	"time"

	"repro/internal/pier"
	"repro/internal/simnet"
	"repro/internal/tuple"
)

func testNode(t *testing.T) *pier.Node {
	t.Helper()
	net := simnet.New(simnet.Config{Seed: 1})
	t.Cleanup(net.Close)
	ep, err := net.Endpoint("shell")
	if err != nil {
		t.Fatal(err)
	}
	node, err := pier.NewNode(ep, pier.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Stop)
	return node
}

func TestDoCreate(t *testing.T) {
	node := testNode(t)
	err := doCreate(node, "sensors name:string,temp:float,count:int key name ttl 30s")
	if err != nil {
		t.Fatal(err)
	}
	tbl, ok := node.Catalog().Lookup("sensors")
	if !ok {
		t.Fatal("table not defined")
	}
	if tbl.Schema.Arity() != 3 || tbl.TTL != 30*time.Second {
		t.Fatalf("%+v", tbl)
	}
	if len(tbl.Schema.Key) != 1 || tbl.Schema.Key[0] != 0 {
		t.Fatalf("key %v", tbl.Schema.Key)
	}
}

func TestDoCreateErrors(t *testing.T) {
	node := testNode(t)
	bad := []string{
		"",
		"t",
		"t col-without-type",
		"t a:quux",
		"t a:int key missing_col",
		"t a:int ttl notaduration",
	}
	for _, args := range bad {
		if err := doCreate(node, args); err == nil {
			t.Fatalf("doCreate(%q) succeeded", args)
		}
	}
}

func TestDoInsert(t *testing.T) {
	node := testNode(t)
	if err := doCreate(node, "kv k:string,v:int,f:float,b:bool key k"); err != nil {
		t.Fatal(err)
	}
	if err := doInsert(node, "kv hello, 42, 2.5, true", false); err != nil {
		t.Fatal(err)
	}
	items := node.Store().LScan("table:kv")
	if len(items) != 1 {
		t.Fatalf("%d items", len(items))
	}
	tp, err := tuple.FromBytes(items[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if tp[0].S != "hello" || tp[1].I != 42 || tp[2].F != 2.5 || !tp[3].B {
		t.Fatalf("row %v", tp)
	}
}

func TestDoInsertErrors(t *testing.T) {
	node := testNode(t)
	doCreate(node, "kv k:string,v:int key k")
	bad := []string{
		"missingtable a,1",
		"kv onlyonevalue",
		"kv a,notanint",
		"kv",
	}
	for _, args := range bad {
		if err := doInsert(node, args, false); err == nil {
			t.Fatalf("doInsert(%q) succeeded", args)
		}
	}
}

func TestStatsDisplayAndQualifiedNames(t *testing.T) {
	node := testNode(t)
	if err := doCreate(node, "t k:string,v:int key k"); err != nil {
		t.Fatal(err)
	}
	// The satellite bugfix: qualified column names normalize instead
	// of erroring, so "\stats t t.v=..." and measured stats agree.
	if err := doStats(node, "t 100 t.v=40"); err != nil {
		t.Fatal(err)
	}
	st := node.Catalog().Stats("t")
	if st.Rows != 100 || st.Distinct["v"] != 40 {
		t.Fatalf("declared stats %+v", st)
	}
	// Bare "\stats t" prints instead of erroring.
	if err := doStats(node, "t"); err != nil {
		t.Fatal(err)
	}
	if err := doStats(node, "missing"); err == nil {
		t.Fatal("unknown table accepted")
	}
}

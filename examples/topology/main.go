// Command topology demonstrates the paper's recursive network-mapping
// application: a directed link table distributed across nodes'
// partitions, queried for multi-hop reachability both in-network
// (deltas rehashing through the DHT, as in the paper's reference [2])
// and through the SQL WITH RECURSIVE surface.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/piertest"
	"repro/internal/topology"
)

func main() {
	log.SetFlags(0)
	const n = 10
	fmt.Printf("== PIER topology mapping: %d nodes ==\n\n", n)
	cluster, err := piertest.New(piertest.Options{N: n, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	mappers := make([]*topology.Mapper, n)
	for i, nd := range cluster.Nodes {
		if mappers[i], err = topology.New(nd, 30*time.Second); err != nil {
			log.Fatal(err)
		}
	}

	// An AS-like topology: a core triangle, two stub chains, and an
	// island; each edge observed by (stored at) a different node.
	edges := [][2]string{
		{"core1", "core2"}, {"core2", "core3"}, {"core3", "core1"},
		{"core1", "edge1"}, {"edge1", "leaf1"}, {"leaf1", "leaf2"},
		{"core2", "edge2"}, {"edge2", "leaf3"},
		{"island1", "island2"},
	}
	for i, e := range edges {
		if err := mappers[i%n].PublishLink(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("node%d observes link %s -> %s\n", i%n, e[0], e[1])
	}
	time.Sleep(200 * time.Millisecond)
	fmt.Println()

	ctx := context.Background()
	for _, src := range []string{"core1", "edge2", "island1"} {
		inNet, err := mappers[0].Reachable(ctx, src, 500*time.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		viaSQL, err := mappers[0].ReachableSQL(ctx, src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("reachable from %-8s (in-network): %v\n", src, inNet)
		fmt.Printf("reachable from %-8s (WITH RECURSIVE): %v\n\n", src, viaSQL)
	}
}

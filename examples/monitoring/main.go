// Command monitoring reproduces the paper's demonstration: PlanetLab
// system-monitoring queries running over PIER. It regenerates both
// evaluation artifacts —
//
//   - Figure 1: a continuous SUM of outbound data rates over the
//     responding nodes, printed as a time series while nodes fail and
//     recover mid-run;
//   - Table 1: the network-wide top-ten intrusion-detection rules
//     with their hit counts.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/monitor"
	"repro/internal/piertest"
)

func main() {
	log.SetFlags(0)
	const n = 24
	fmt.Printf("== PIER monitoring demo: %d simulated PlanetLab nodes ==\n\n", n)
	cluster, err := piertest.New(piertest.Options{N: n, Seed: 2004})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// --- Table 1: top-10 intrusion detection rules ---
	rules := append(append([]monitor.Rule(nil), monitor.Table1Rules...), monitor.BackgroundRules...)
	if err := monitor.SeedAlerts(cluster.Nodes, rules, time.Minute, 7); err != nil {
		log.Fatal(err)
	}
	res, err := cluster.Nodes[0].Query(context.Background(), monitor.Table1SQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table 1: network-wide top ten intrusion detection rules")
	fmt.Printf("%-6s %-40s %10s\n", "Rule", "Rule Description", "Hits")
	for _, row := range res.Rows {
		fmt.Printf("%-6d %-40s %10d\n", row[0].I, row[1].S, row[2].I)
	}
	fmt.Println()

	// --- Figure 1: continuous sum of outbound data rates ---
	sensors := make([]*monitor.Sensor, n)
	for i, nd := range cluster.Nodes {
		s, err := monitor.NewSensor(nd, monitor.SensorConfig{
			Period:   100 * time.Millisecond,
			BaseRate: 10,
			TTL:      2 * time.Second,
			Seed:     int64(i),
		})
		if err != nil {
			log.Fatal(err)
		}
		sensors[i] = s
		defer s.Stop()
	}
	cont, err := cluster.Nodes[0].QueryContinuous(context.Background(),
		monitor.Figure1Query(time.Second, 500*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	defer cont.Stop()

	fmt.Println("Figure 1: continuous SUM(rate) over responding nodes")
	fmt.Println("(killing 6 nodes at t≈4s, restoring them at t≈8s)")
	start := time.Now()
	killed := false
	restored := false
	for time.Since(start) < 12*time.Second {
		select {
		case wr, ok := <-cont.Results():
			if !ok {
				return
			}
			if len(wr.Rows) != 1 {
				continue
			}
			t := time.Since(start).Round(100 * time.Millisecond)
			sum := wr.Rows[0][0].F
			bar := ""
			for i := 0; i < int(sum/40); i++ {
				bar += "#"
			}
			fmt.Printf("t=%-6v sum=%8.1f %s\n", t, sum, bar)
		case <-time.After(15 * time.Second):
			log.Fatal("no window results")
		}
		if !killed && time.Since(start) > 4*time.Second {
			killed = true
			for i := 1; i <= 6; i++ {
				cluster.Net.SetDown(cluster.Nodes[i].Addr(), true)
			}
		}
		if !restored && time.Since(start) > 8*time.Second {
			restored = true
			for i := 1; i <= 6; i++ {
				cluster.Net.SetDown(cluster.Nodes[i].Addr(), false)
			}
		}
	}
}

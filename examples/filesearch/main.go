// Command filesearch demonstrates the paper's keyword file-sharing
// search application: an inverted index published into the DHT,
// multi-keyword queries answered by direct posting-list fetches and
// by a distributed self-join, and a Gnutella-style flooding baseline
// for cost comparison.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/baseline"
	"repro/internal/piertest"
	"repro/internal/search"
)

func main() {
	log.SetFlags(0)
	const n = 16
	fmt.Printf("== PIER file-sharing search: %d nodes ==\n\n", n)
	cluster, err := piertest.New(piertest.Options{N: n, Seed: 77})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	indexes := make([]*search.Index, n)
	floods := make([]*baseline.Flood, n)
	for i, nd := range cluster.Nodes {
		if indexes[i], err = search.New(nd, time.Minute); err != nil {
			log.Fatal(err)
		}
		if floods[i], err = baseline.NewFlood(nd); err != nil {
			log.Fatal(err)
		}
	}

	// Each node shares a few files; both the DHT index and the
	// flooding baseline's local tables see the same corpus.
	corpus := map[string][]string{
		"miles-davis-so-what.mp3":   {"jazz", "trumpet", "classic"},
		"coltrane-giant-steps.mp3":  {"jazz", "sax", "classic"},
		"evans-waltz-for-debby.mp3": {"jazz", "piano", "live"},
		"hendrix-voodoo-child.mp3":  {"rock", "guitar", "classic"},
		"king-crimson-red.mp3":      {"rock", "guitar"},
		"glass-etudes.mp3":          {"piano", "minimalism"},
		"lecture-jazz-history.ogg":  {"jazz", "history", "lecture"},
		"lecture-dht-overlays.ogg":  {"dht", "lecture"},
		"monk-round-midnight.mp3":   {"jazz", "piano", "classic"},
		"pastorius-portrait.mp3":    {"jazz", "bass"},
		"bowie-heroes.mp3":          {"rock", "classic"},
		"reich-music-18.mp3":        {"minimalism", "classic"},
		"peterson-night-train.mp3":  {"jazz", "piano", "live"},
		"zeppelin-kashmir.mp3":      {"rock", "guitar", "classic"},
		"brubeck-take-five.mp3":     {"jazz", "piano", "classic"},
		"lecture-query-proc.ogg":    {"database", "lecture"},
	}
	i := 0
	for file, words := range corpus {
		if err := indexes[i%n].PublishFile(file, words); err != nil {
			log.Fatal(err)
		}
		if err := floods[i%n].ShareFile(file, words); err != nil {
			log.Fatal(err)
		}
		i++
	}
	time.Sleep(500 * time.Millisecond) // let puts settle

	ctx := context.Background()
	searches := [][]string{
		{"jazz"},
		{"jazz", "piano"},
		{"rock", "guitar"},
		{"jazz", "piano", "live"},
		{"lecture"},
	}
	for _, words := range searches {
		cluster.Net.ResetStats()
		got, err := indexes[0].SearchGet(ctx, words...)
		if err != nil {
			log.Fatal(err)
		}
		dhtMsgs := cluster.Net.Stats().Sent
		fmt.Printf("search %v (DHT gets, %d msgs):\n", words, dhtMsgs)
		for _, f := range got {
			fmt.Printf("  %s\n", f)
		}
		if len(words) == 2 {
			viaJoin, err := indexes[0].SearchJoin(ctx, words[0], words[1])
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  (distributed join agrees: %v)\n", equalStrings(got, viaJoin))
		}
		fmt.Println()
	}

	// Flooding comparison for a single word.
	cluster.Net.ResetStats()
	hits, err := floods[0].Search(ctx, "jazz", 6, 400*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flooding search \"jazz\": %d files, %d network messages\n",
		len(hits), cluster.Net.Stats().Sent)
	cluster.Net.ResetStats()
	if _, err := indexes[0].SearchGet(ctx, "jazz"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DHT search     \"jazz\": %d network messages\n", cluster.Net.Stats().Sent)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

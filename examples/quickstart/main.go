// Command quickstart spins up a small simulated PIER deployment,
// publishes tuples into each node's local partition, and runs a few
// one-shot SQL queries — the minimal end-to-end tour of the engine.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/piertest"
	"repro/internal/tuple"
)

func main() {
	log.SetFlags(0)
	fmt.Println("== PIER quickstart: 8 simulated nodes, one Chord ring ==")

	cluster, err := piertest.New(piertest.Options{N: 8, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Printf("overlay converged: %d nodes\n\n", len(cluster.Nodes))

	// Define a table everywhere and let each node contribute rows to
	// its own local partition — data stays at the edge, queries come
	// to the data.
	schema := tuple.MustSchema("load", []tuple.Column{
		{Name: "node", Type: tuple.TString},
		{Name: "cpu", Type: tuple.TFloat},
		{Name: "procs", Type: tuple.TInt},
	}, "node")
	for i, nd := range cluster.Nodes {
		if err := nd.DefineTable(schema, time.Minute); err != nil {
			log.Fatal(err)
		}
		err := nd.PublishLocal("load", tuple.Tuple{
			tuple.String(nd.Addr()),
			tuple.Float(0.1 * float64(i+1)),
			tuple.Int(int64(40 + 3*i)),
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	queries := []string{
		"SELECT node, cpu FROM load WHERE cpu > 0.5 ORDER BY cpu DESC",
		"SELECT COUNT(*) AS nodes, AVG(cpu) AS avg_cpu, MAX(procs) AS max_procs FROM load",
		"SELECT node, cpu * 100 AS pct FROM load ORDER BY pct DESC LIMIT 3",
	}
	for _, q := range queries {
		fmt.Println("SQL>", q)
		res, err := cluster.Nodes[0].Query(context.Background(), q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v\n", res.Columns)
		for _, row := range res.Rows {
			fmt.Printf("  %v\n", row)
		}
		fmt.Printf("(%d rows from %d participants in %v)\n\n",
			len(res.Rows), res.Participants, res.Duration.Round(time.Millisecond))
	}
}

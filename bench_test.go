// Package repro's root benchmarks regenerate every evaluation
// artifact of "Querying at Internet Scale" (SIGMOD 2004) plus the
// supporting shape experiments DESIGN.md indexes. Each benchmark runs
// a full simulated deployment per iteration, so iteration counts are
// fixed at 1; the numbers that matter are the custom metrics
// (messages, bytes, hops, survival fractions) — those are what
// EXPERIMENTS.md records against the paper.
//
// Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"math"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/monitor"
)

// BenchmarkFigure1ContinuousSum regenerates Figure 1: the continuous
// SUM of outbound data rates over responding nodes, with a mid-run
// failure and recovery of a quarter of the network.
func BenchmarkFigure1ContinuousSum(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		series, err := bench.Figure1(bench.Figure1Config{
			N: 24, Seed: int64(i + 1),
			Window: time.Second, Slide: 500 * time.Millisecond,
			Run: 8 * time.Second, FailAt: 3 * time.Second,
			RecoverAt: 6 * time.Second, FailCount: 6,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(series) < 6 {
			b.Fatalf("only %d windows", len(series))
		}
		// Shape check on the diurnal-corrected response fraction: the
		// sensors carry a wall-clock-phased sine trend, so raw sums
		// from different windows are incomparable — the fraction
		// (actual/model-expected) isolates the failure dip. Medians
		// tolerate window jitter around the fail/recover edges.
		pre, trough, ok := bench.Figure1Dip(series,
			2*time.Second, 3*time.Second, 4500*time.Millisecond, 6*time.Second)
		if ok {
			// 6 of 24 nodes down: expect ~25% dip; require >10%.
			if trough >= pre-0.1 {
				b.Fatalf("no failure dip: pre fraction=%.3f trough fraction=%.3f", pre, trough)
			}
			b.ReportMetric(pre, "frac-steady")
			b.ReportMetric(trough, "frac-degraded")
		}
		b.ReportMetric(float64(len(series)), "windows")
	}
}

// BenchmarkTable1TopTenRules regenerates Table 1: the network-wide
// top-ten intrusion-detection rules, which must come back in the
// paper's exact order with the paper's exact counts.
func BenchmarkTable1TopTenRules(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := bench.Table1(24, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 10 {
			b.Fatalf("%d rows", len(res.Rows))
		}
		for j, want := range monitor.Table1Rules {
			got := res.Rows[j]
			if got.Rule != want.ID || got.Hits != want.Hits {
				b.Fatalf("row %d: got rule %d/%d hits, paper has %d/%d",
					j, got.Rule, got.Hits, want.ID, want.Hits)
			}
		}
		b.ReportMetric(float64(res.Msgs), "msgs")
		b.ReportMetric(float64(res.Duration.Milliseconds()), "query-ms")
	}
}

// BenchmarkScalingHops checks S1: mean lookup hop count grows like
// O(log n) as the network quadruples.
func BenchmarkScalingHops(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points, err := bench.ScalingHops([]int{16, 64}, 40, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			bound := 2*math.Log2(float64(p.N)) + 2
			if p.MeanHops > bound {
				b.Fatalf("N=%d mean hops %.2f exceeds %.2f", p.N, p.MeanHops, bound)
			}
		}
		b.ReportMetric(points[0].MeanHops, "hops-n16")
		b.ReportMetric(points[1].MeanHops, "hops-n64")
	}
}

// BenchmarkAggregationVsCentralized checks S2: in-network aggregation
// delivers far less traffic to the collection point than shipping
// every tuple there, and relay combining shrinks it further.
func BenchmarkAggregationVsCentralized(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results, err := bench.AggregationComparison(24, 20, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		byMode := map[string]bench.AggResult{}
		for _, r := range results {
			byMode[r.Mode] = r
		}
		inNet := byMode["in-network+combine"]
		central := byMode["centralized"]
		if inNet.RootInBytes >= central.RootInBytes {
			b.Fatalf("in-network root bandwidth %d >= centralized %d",
				inNet.RootInBytes, central.RootInBytes)
		}
		b.ReportMetric(float64(inNet.RootInBytes), "root-bytes-innet")
		b.ReportMetric(float64(byMode["in-network"].RootInBytes), "root-bytes-nocombine")
		b.ReportMetric(float64(central.RootInBytes), "root-bytes-central")
		b.ReportMetric(float64(inNet.Msgs), "msgs-innet")
		b.ReportMetric(float64(central.Msgs), "msgs-central")
	}
}

// BenchmarkJoinStrategies checks S3: all three join strategies return
// the same rows, and the Bloom rewrite rehashes less than plain
// symmetric hash at low selectivity.
func BenchmarkJoinStrategies(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results, err := bench.JoinStrategies(16, 10, 600, 0.05, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		rows := results[0].Rows
		for _, r := range results {
			if r.Rows != rows {
				b.Fatalf("strategy %s returned %d rows, others %d", r.Strategy, r.Rows, rows)
			}
		}
		byStrat := map[string]bench.JoinResult{}
		for _, r := range results {
			byStrat[r.Strategy] = r
		}
		if byStrat["bloom"].Bytes >= byStrat["symmetric"].Bytes {
			b.Fatalf("bloom join moved %d bytes >= symmetric %d",
				byStrat["bloom"].Bytes, byStrat["symmetric"].Bytes)
		}
		b.ReportMetric(float64(byStrat["symmetric"].Msgs), "msgs-symmetric")
		b.ReportMetric(float64(byStrat["fetch"].Msgs), "msgs-fetch")
		b.ReportMetric(float64(byStrat["bloom"].Msgs), "msgs-bloom")
	}
}

// BenchmarkMultiwayJoin checks the logical join trees: a 3-table
// equi-join executes distributed under the optimizer's stats-driven
// plan, a forced symmetric-hash stack, and a forced fetch chain, all
// returning rows byte-identical to the single-node baseline executor.
func BenchmarkMultiwayJoin(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results, err := bench.MultiwayJoin(32, 8, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if !r.MatchesBaseline {
				b.Fatalf("mode %s diverged from the single-node baseline executor", r.Mode)
			}
			if r.Rows == 0 {
				b.Fatalf("mode %s returned no rows", r.Mode)
			}
			b.ReportMetric(float64(r.Msgs), "msgs-"+r.Mode)
		}
	}
}

// BenchmarkChurnResilience checks S4: replication raises data
// survival when a quarter of the network dies.
func BenchmarkChurnResilience(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results, err := bench.ChurnSurvival(16, 60, 4, []int{-1, 2}, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		noRep, rep := results[0], results[1]
		if rep.SurvivedFrac < noRep.SurvivedFrac {
			b.Fatalf("replication hurt survival: %0.2f < %0.2f",
				rep.SurvivedFrac, noRep.SurvivedFrac)
		}
		if rep.SurvivedFrac < 0.9 {
			b.Fatalf("replicated survival only %.2f", rep.SurvivedFrac)
		}
		b.ReportMetric(noRep.SurvivedFrac, "survival-r0")
		b.ReportMetric(rep.SurvivedFrac, "survival-r2")
	}
}

// BenchmarkSearchVsFlooding checks S5: DHT keyword search touches a
// tiny fraction of the messages flooding needs, with equal recall.
func BenchmarkSearchVsFlooding(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results, err := bench.SearchComparison(24, 40, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		dht, flood := results[0], results[1]
		if dht.Files != flood.Files {
			b.Fatalf("recall differs: dht %d files, flood %d", dht.Files, flood.Files)
		}
		if dht.Msgs >= flood.Msgs {
			b.Fatalf("dht search cost %d msgs >= flooding %d", dht.Msgs, flood.Msgs)
		}
		b.ReportMetric(float64(dht.Msgs), "msgs-dht")
		b.ReportMetric(float64(flood.Msgs), "msgs-flood")
	}
}

// BenchmarkRecursiveTopology checks S6: the in-network recursive
// closure finds the full transitive closure and agrees with the SQL
// WITH RECURSIVE surface.
func BenchmarkRecursiveTopology(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := bench.RecursiveTopology(12, 8, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if res.Facts != res.Expected {
			b.Fatalf("closure found %d facts, want %d", res.Facts, res.Expected)
		}
		if !res.AgreeSQL {
			b.Fatal("in-network and SQL closures disagree")
		}
		b.ReportMetric(float64(res.Msgs), "msgs")
	}
}

// BenchmarkRouteBatching checks S7: per-destination route batching
// cuts the routed-message count of a 1,000-tuple-per-side
// symmetric-hash join on a 32-node network by at least 5x while
// returning byte-identical result rows.
func BenchmarkRouteBatching(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results, err := bench.RouteBatchingJoin(32, 1000, 5, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		batched, unbatched := results[0], results[1]
		if batched.Rows == 0 {
			b.Fatal("join returned no rows")
		}
		if batched.Rows != unbatched.Rows || !batched.SameRows(unbatched) {
			b.Fatalf("result rows differ: batched %d rows, unbatched %d rows",
				batched.Rows, unbatched.Rows)
		}
		if unbatched.RoutedMsgs < 5*batched.RoutedMsgs {
			b.Fatalf("routed messages only improved %0.1fx (batched %d, unbatched %d), want >=5x",
				float64(unbatched.RoutedMsgs)/float64(batched.RoutedMsgs),
				batched.RoutedMsgs, unbatched.RoutedMsgs)
		}
		b.ReportMetric(float64(batched.RoutedMsgs), "routed-batched")
		b.ReportMetric(float64(unbatched.RoutedMsgs), "routed-unbatched")
		b.ReportMetric(batched.BytesPerTuple, "bytes/tuple-batched")
		b.ReportMetric(unbatched.BytesPerTuple, "bytes/tuple-unbatched")
		b.ReportMetric(float64(batched.Frames), "frames")
		if batched.Frames > 0 {
			b.ReportMetric(float64(batched.FrameRecords)/float64(batched.Frames), "records/frame")
		}
	}
}

// BenchmarkOverlayAblation checks the DHT-agnosticism claim: the same
// query answers correctly over Chord, Kademlia, and CAN — all three
// DHT schemes the paper cites.
func BenchmarkOverlayAblation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results, err := bench.OverlayAblation(16, 40, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if !r.SumOK {
				b.Fatalf("overlay %s computed a wrong aggregate", r.Overlay)
			}
		}
		b.ReportMetric(results[0].MeanHops, "hops-chord")
		b.ReportMetric(results[1].MeanHops, "hops-kademlia")
		if len(results) > 2 {
			b.ReportMetric(results[2].MeanHops, "hops-can")
		}
	}
}

// BenchmarkLocalJoinPipeline measures the local-execution join hot
// path (scan → filter → rehash exchange → symmetric-hash probe) with
// no network, at the default vectorization width — the
// batch-at-a-time speedup BENCH_PR4.json tracks. Compare against
// BenchmarkLocalJoinPipelineScalar for the tuple-at-a-time baseline.
func BenchmarkLocalJoinPipeline(b *testing.B) {
	b.ReportAllocs()
	const nLeft, nRight = 20000, 1000
	wl := bench.NewLocalJoinWorkload(nLeft, nRight)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := wl.Run(256, 4)
		if err != nil {
			b.Fatal(err)
		}
		if rows != nLeft {
			b.Fatalf("rows %d", rows)
		}
	}
	b.ReportMetric(float64(nLeft+nRight)*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
}

// BenchmarkLocalJoinPipelineScalar is the same workload at batch size
// 1 and one scan worker: exactly the engine's tuple-at-a-time
// behavior, kept as the baseline for the vectorization ratio.
func BenchmarkLocalJoinPipelineScalar(b *testing.B) {
	b.ReportAllocs()
	const nLeft, nRight = 20000, 1000
	wl := bench.NewLocalJoinWorkload(nLeft, nRight)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := wl.Run(1, 1)
		if err != nil {
			b.Fatal(err)
		}
		if rows != nLeft {
			b.Fatalf("rows %d", rows)
		}
	}
	b.ReportMetric(float64(nLeft+nRight)*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
}

// BenchmarkAnalyze runs the distributed-ANALYZE experiment at full
// scale: a 32-node simulated network with no hand-declared
// statistics, where ANALYZE + gossip must estimate within 2x of the
// truth and steer the optimizer to the hand-declared baseline's join
// order (byte-identical rows). Custom metrics record per-table
// measurement cost and the plan-quality gap versus coarse defaults.
func BenchmarkAnalyze(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := bench.AnalyzeStats(32, 8, 50, 5000, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if !out.PlansMatch {
			b.Fatalf("measured plan %q != declared plan %q", out.MeasuredPlan, out.DeclaredPlan)
		}
		if out.MeasuredPlan == out.DefaultsPlan {
			b.Fatalf("defaults and measured picked the same plan %q", out.DefaultsPlan)
		}
		if !out.RowsMatch {
			b.Fatal("result rows diverged across statistics regimes")
		}
		for _, c := range out.Costs {
			if c.WithinFactor() > 2 {
				b.Fatalf("%s estimate %d vs true %d beyond 2x", c.Table, c.EstRows, c.TrueRows)
			}
			b.ReportMetric(float64(c.Latency.Milliseconds()), "analyze-ms-"+c.Table)
			b.ReportMetric(float64(c.Msgs), "analyze-msgs-"+c.Table)
		}
		b.ReportMetric(float64(out.DefaultsMsgs), "query-msgs-defaults")
		b.ReportMetric(float64(out.MeasuredMsgs), "query-msgs-measured")
	}
}

// BenchmarkSpillSweep runs the join memory-budget sweep: the same
// join under budgets from unlimited down to 64KB must return rows
// byte-identical to the centralized baseline with peak resident
// memory tracking the budget, spilling the difference to temp files.
func BenchmarkSpillSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := bench.SpillSweep(4, 0, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range out.Points {
			if !p.RowsMatch {
				b.Fatalf("budget %d: rows diverged from centralized baseline", p.Budget)
			}
			if p.Budget > 0 && p.PeakMem > 4*uint64(p.Budget) {
				b.Fatalf("budget %d: peak resident %d beyond 4x budget", p.Budget, p.PeakMem)
			}
		}
		smallest := out.Points[len(out.Points)-1]
		if smallest.Spilled == 0 || smallest.Passes == 0 {
			b.Fatalf("smallest budget %d did not spill (spilled=%d passes=%d)",
				smallest.Budget, smallest.Spilled, smallest.Passes)
		}
		b.ReportMetric(float64(out.BuildBytes), "build-bytes")
		b.ReportMetric(float64(smallest.PeakMem), "peak-mem-64kb")
		b.ReportMetric(float64(smallest.Spilled), "spilled-64kb")
	}
}
